"""Checkpoint directory management: naming, retention, recovery.

A :class:`CheckpointManager` owns one directory of training checkpoints:

- periodic checkpoints are named ``ckpt-e<epoch>-b<batch>.npz`` and kept
  under a *keep-last-k* policy (oldest deleted first);
- the early-stopping best state lives in ``best.npz`` and is exempt from
  retention;
- :meth:`latest_valid` walks checkpoints newest-to-oldest, skipping any
  that fail checksum verification, so a crash that corrupts the newest
  file still recovers from the last good one.

Every write goes through the atomic, checksummed writer of
:mod:`repro.ckpt.checkpoint` and is timed under an ``obs`` ``checkpoint``
span so profiles attribute checkpoint I/O explicitly.
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import List, Optional, Union

from ..obs.tracer import trace
from .checkpoint import (CheckpointError, TrainingCheckpoint,
                         load as load_file, save as save_file)

_CKPT_PATTERN = re.compile(r"^ckpt-e(\d+)-b(\d+)\.npz$")
BEST_NAME = "best.npz"


class CheckpointManager:
    """Saves/loads :class:`TrainingCheckpoint` files under one directory.

    Parameters
    ----------
    directory:
        Created on first save if missing.
    keep_last:
        Periodic checkpoints retained (the best checkpoint is kept in
        addition to these).  Must be >= 1.
    """

    def __init__(self, directory: Union[str, Path], keep_last: int = 3):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        #: total bytes and seconds spent writing, for telemetry
        self.bytes_written = 0
        self.write_seconds = 0.0
        self.saves = 0

    # ------------------------------------------------------------------
    def path_for(self, epoch: int, batch_index: int) -> Path:
        return self.directory / f"ckpt-e{epoch:04d}-b{batch_index:06d}.npz"

    @property
    def best_path(self) -> Path:
        return self.directory / BEST_NAME

    def checkpoints(self) -> List[Path]:
        """Periodic checkpoints, oldest first (excludes ``best.npz``)."""
        if not self.directory.exists():
            return []
        found = [p for p in self.directory.iterdir()
                 if _CKPT_PATTERN.match(p.name)]
        return sorted(found, key=lambda p: tuple(
            int(g) for g in _CKPT_PATTERN.match(p.name).groups()))

    # ------------------------------------------------------------------
    def save(self, checkpoint: TrainingCheckpoint,
             is_best: bool = False) -> Path:
        """Write a periodic checkpoint (and ``best.npz`` when asked),
        then apply the retention policy."""
        start = time.perf_counter()
        with trace("checkpoint"):
            path = save_file(checkpoint,
                             self.path_for(checkpoint.epoch,
                                           checkpoint.batch_index))
            if is_best:
                save_file(checkpoint, self.best_path)
        self.write_seconds += time.perf_counter() - start
        self.bytes_written += path.stat().st_size
        self.saves += 1
        self._prune()
        return path

    def save_best(self, checkpoint: TrainingCheckpoint) -> Path:
        """Write only ``best.npz`` (no retention interaction)."""
        with trace("checkpoint"):
            return save_file(checkpoint, self.best_path)

    def _prune(self) -> None:
        existing = self.checkpoints()
        for stale in existing[:max(0, len(existing) - self.keep_last)]:
            try:
                stale.unlink()
            except OSError:
                pass  # a vanished file is already pruned

    # ------------------------------------------------------------------
    def latest(self) -> Optional[Path]:
        """Newest periodic checkpoint path, or ``None`` when empty."""
        existing = self.checkpoints()
        return existing[-1] if existing else None

    def latest_valid(self) -> Optional[TrainingCheckpoint]:
        """Newest checkpoint that loads and passes its checksum.

        Corrupt/truncated files (the footprint of a crash mid-write or a
        damaged disk) are skipped, newest to oldest.  Returns ``None``
        when no checkpoint survives.
        """
        for path in reversed(self.checkpoints()):
            try:
                return load_file(path)
            except CheckpointError:
                continue
        return None

    def load_best(self) -> Optional[TrainingCheckpoint]:
        """The ``best.npz`` checkpoint, or ``None`` if absent/corrupt."""
        try:
            return load_file(self.best_path)
        except CheckpointError:
            return None

    def telemetry(self) -> dict:
        """Write-cost counters for benchmark JSON artifacts."""
        latest = self.latest()
        return {
            "checkpoint_saves": self.saves,
            "checkpoint_bytes_written": self.bytes_written,
            "checkpoint_write_seconds": self.write_seconds,
            "checkpoint_latest_bytes": (latest.stat().st_size
                                        if latest is not None else 0),
            "checkpoint_files_retained": len(self.checkpoints()),
        }
