"""The versioned checkpoint format: atomic, checksummed ``.npz`` archives.

A checkpoint is a single ``.npz`` file holding

- ``model/<param>`` — every model parameter array;
- ``best/<param>`` — the early-stopping best parameters, when tracked;
- ``optim/<index>/<slot>`` — optimizer buffers (Adam ``m``/``v``, ...);
- ``__meta__`` — a JSON blob (format version, model class, optimizer
  hyperparameters and step count, RNG states, the training cursor, a
  ``TrainConfig`` snapshot, and user metadata);
- ``__checksum__`` — a SHA-256 digest over every other entry, so a
  truncated or bit-flipped archive is detected on load instead of
  silently resuming from garbage.

Writes are atomic: the archive is serialised to a temporary file in the
destination directory, fsynced, and ``os.replace``d into place, so a
crash mid-write can never leave a half-written file under the final
name — the worst case is a stale ``*.tmp-*`` file that loaders ignore.

Format version 2 supersedes the parameters-only version 1 of
:mod:`repro.io`; :func:`read_archive` loads both (v1 archives surface as
model-only checkpoints with no optimizer/RNG/cursor state).
"""

from __future__ import annotations

import hashlib
import io as _io
import json
import os
import tempfile
import zipfile
import zlib
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

FORMAT_VERSION = 2

_META_KEY = "__meta__"
_CHECKSUM_KEY = "__checksum__"
#: the v1 metadata key written by the original ``repro.io`` format
_V1_META_KEY = "__checkpoint_meta__"

_MODEL_PREFIX = "model/"
_BEST_PREFIX = "best/"
_OPTIM_PREFIX = "optim/"


class CheckpointError(RuntimeError):
    """A checkpoint could not be read: missing, corrupt, or incompatible.

    The message always names the offending path and what to do about it
    (delete/retrain, fall back to an older checkpoint, or upgrade).
    """


def _json_default(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """JSON-ready state of a NumPy generator (bit-generator dict)."""
    return generator.bit_generator.state


def restore_rng(generator: np.random.Generator,
                state: Dict[str, Any]) -> None:
    """Set ``generator`` to a state captured by :func:`rng_state`.

    The generator must wrap the same bit-generator algorithm; NumPy
    validates the payload and raises otherwise.
    """
    generator.bit_generator.state = state


@dataclass
class TrainingCheckpoint:
    """Everything needed to continue a training run bitwise-identically.

    ``cursor`` holds the position inside the fit loop::

        {"epoch": e,            # epoch currently in progress (0-based)
         "batch_index": b,      # batches of that epoch already applied
         "day_order": [...],    # the epoch's shuffled day order (or None)
         "epoch_loss": x,       # loss accumulated over those b batches
         "losses": [...]}       # completed epochs' mean losses

    ``rng`` maps stream names (``"shuffle"``, ``"global"``, and one per
    model RNG discovered via ``named_modules``) to bit-generator states.
    ``early_stopping`` carries ``best_val`` / ``bad_epochs``; the best
    parameters themselves live in :attr:`best_model_state` so they stay
    arrays, not JSON.
    """

    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, Any] = field(default_factory=dict)
    rng: Dict[str, Any] = field(default_factory=dict)
    cursor: Dict[str, Any] = field(default_factory=dict)
    early_stopping: Dict[str, Any] = field(default_factory=dict)
    best_model_state: Optional[Dict[str, np.ndarray]] = None
    config: Dict[str, Any] = field(default_factory=dict)
    model_class: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION

    @property
    def epoch(self) -> int:
        """Epoch the checkpoint was taken in (0 when no cursor stored)."""
        return int(self.cursor.get("epoch", 0))

    @property
    def batch_index(self) -> int:
        """Batches of :attr:`epoch` already applied when captured."""
        return int(self.cursor.get("batch_index", 0))


def _config_snapshot(config: Any) -> Dict[str, Any]:
    if config is None:
        return {}
    if is_dataclass(config) and not isinstance(config, type):
        return asdict(config)
    return dict(config)


def _checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every entry's name, dtype, shape, and raw bytes, in
    sorted-name order, so the digest is deterministic and covers layout
    as well as content."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _meta_array(meta: Dict[str, Any]) -> np.ndarray:
    payload = json.dumps(meta, sort_keys=True, default=_json_default)
    return np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via tmp-file + fsync + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".tmp-",
                                    dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_archive(path: Union[str, Path], arrays: Dict[str, np.ndarray],
                  meta: Dict[str, Any]) -> Path:
    """Atomically write a checksummed v2 archive; returns the final path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = dict(arrays)
    arrays[_META_KEY] = _meta_array(meta)
    arrays[_CHECKSUM_KEY] = np.frombuffer(
        _checksum(arrays).encode("ascii"), dtype=np.uint8)
    buffer = _io.BytesIO()
    np.savez(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())
    return path


def verify_archive(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate an archive and return its metadata without loading arrays
    into a model; raises :class:`CheckpointError` on any defect."""
    _, meta = read_archive(path)
    return meta


def read_archive(path: Union[str, Path]
                 ) -> "tuple[Dict[str, np.ndarray], Dict[str, Any]]":
    """Read and verify an archive: ``(arrays, meta)``.

    Accepts both format v2 (checksummed) and the legacy v1 layout of
    ``repro.io`` (parameters + ``__checkpoint_meta__``, no checksum).
    Raises :class:`CheckpointError` with an actionable message when the
    file is missing, unreadable, or fails its checksum.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist; pass the "
                              "path returned by save(), or list the "
                              "checkpoint directory for available files")
    try:
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zlib.error, EOFError,
            zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable ({exc}); the file is likely "
            "truncated by an interrupted write — delete it and resume from "
            "an older checkpoint") from exc

    if _V1_META_KEY in arrays:                      # legacy repro.io format
        meta = _decode_meta(path, arrays.pop(_V1_META_KEY))
        meta.setdefault("format_version", 1)
        meta["model"] = sorted(arrays)
        return arrays, meta

    if _META_KEY not in arrays:
        raise CheckpointError(f"{path} is not a repro checkpoint (no "
                              f"metadata entry); it was not written by "
                              "repro.ckpt or repro.io")
    stored = arrays.pop(_CHECKSUM_KEY, None)
    if stored is None:
        raise CheckpointError(f"checkpoint {path} has no checksum entry; "
                              "the archive is incomplete — delete it and "
                              "resume from an older checkpoint")
    expected = bytes(stored).decode("ascii")
    actual = _checksum(arrays)
    if actual != expected:
        raise CheckpointError(
            f"checkpoint {path} failed checksum verification (stored "
            f"{expected[:12]}..., computed {actual[:12]}...); the file is "
            "corrupt — delete it and resume from an older checkpoint")
    meta = _decode_meta(path, arrays.pop(_META_KEY))
    version = meta.get("format_version")
    if version not in (1, FORMAT_VERSION):
        raise CheckpointError(f"checkpoint {path} has format_version "
                              f"{version!r}; this build reads versions 1 "
                              f"and {FORMAT_VERSION} — upgrade repro to "
                              "load it")
    return arrays, meta


def _decode_meta(path: Path, blob: np.ndarray) -> Dict[str, Any]:
    try:
        return json.loads(bytes(blob).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"checkpoint {path} has corrupt metadata "
                              f"({exc}); delete it and resume from an "
                              "older checkpoint") from exc


def save(checkpoint: TrainingCheckpoint, path: Union[str, Path]) -> Path:
    """Serialise a :class:`TrainingCheckpoint` to ``path`` atomically."""
    arrays: Dict[str, np.ndarray] = {}
    for name, array in checkpoint.model_state.items():
        arrays[_MODEL_PREFIX + name] = np.asarray(array)
    if checkpoint.best_model_state is not None:
        for name, array in checkpoint.best_model_state.items():
            arrays[_BEST_PREFIX + name] = np.asarray(array)
    optim_meta: Dict[str, Any] = {}
    if checkpoint.optimizer_state:
        optim_meta = {k: v for k, v in checkpoint.optimizer_state.items()
                      if k != "state"}
        for index, slots in checkpoint.optimizer_state.get("state",
                                                           {}).items():
            for slot, array in slots.items():
                arrays[f"{_OPTIM_PREFIX}{index}/{slot}"] = np.asarray(array)
    meta = {
        "format_version": checkpoint.format_version,
        "model_class": checkpoint.model_class,
        "has_best": checkpoint.best_model_state is not None,
        "optimizer": optim_meta,
        "rng": checkpoint.rng,
        "cursor": checkpoint.cursor,
        "early_stopping": checkpoint.early_stopping,
        "config": _config_snapshot(checkpoint.config),
        "user": checkpoint.metadata,
    }
    return write_archive(path, arrays, meta)


def load(path: Union[str, Path]) -> TrainingCheckpoint:
    """Read a :class:`TrainingCheckpoint` back from ``path``.

    v1 archives load as model-only checkpoints: parameters are present,
    optimizer/RNG/cursor state are empty, and ``format_version`` is 1 so
    callers can refuse a mid-run resume from a parameters-only file.
    """
    arrays, meta = read_archive(path)
    if meta.get("format_version") == 1:
        return TrainingCheckpoint(
            model_state=dict(arrays), format_version=1,
            model_class=meta.get("model_class", ""),
            metadata=meta.get("user", {}))
    model_state: Dict[str, np.ndarray] = {}
    best_state: Dict[str, np.ndarray] = {}
    optim_buffers: Dict[int, Dict[str, np.ndarray]] = {}
    for name, array in arrays.items():
        if name.startswith(_MODEL_PREFIX):
            model_state[name[len(_MODEL_PREFIX):]] = array
        elif name.startswith(_BEST_PREFIX):
            best_state[name[len(_BEST_PREFIX):]] = array
        elif name.startswith(_OPTIM_PREFIX):
            index_str, slot = name[len(_OPTIM_PREFIX):].split("/", 1)
            optim_buffers.setdefault(int(index_str), {})[slot] = array
    optimizer_state = dict(meta.get("optimizer", {}))
    if optimizer_state or optim_buffers:
        optimizer_state["state"] = optim_buffers
    return TrainingCheckpoint(
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng=meta.get("rng", {}),
        cursor=meta.get("cursor", {}),
        early_stopping=meta.get("early_stopping", {}),
        best_model_state=best_state if meta.get("has_best") else None,
        config=meta.get("config", {}),
        model_class=meta.get("model_class", ""),
        metadata=meta.get("user", {}),
        format_version=int(meta.get("format_version", FORMAT_VERSION)))
