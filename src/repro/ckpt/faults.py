"""Fault injection: crash a training run on purpose, corrupt its files.

Fault-tolerant code that is never exercised against faults is wishful
thinking.  This module provides the two failure modes that matter for
checkpointing, so tests (and the CI round-trip job) *prove* recovery:

- :class:`CrashAfterBatches` — a trainer callback that terminates the fit
  after a chosen number of optimiser steps, either by raising
  :class:`SimulatedCrash` (catchable, for in-process tests) or via
  ``os._exit`` (``hard=True``) which skips all cleanup exactly like a
  SIGKILL — no ``finally`` blocks, no atexit, no flushing.
- :func:`corrupt_archive` — damages a checkpoint file the way real
  crashes and disks do: truncation (interrupted write) or bit flips
  (rot/partial overwrite), so checksum verification and the
  last-good-checkpoint fallback can be asserted.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.callbacks import TrainerCallback

#: process exit code used by ``hard`` crashes, chosen to be distinguishable
#: from argparse errors (2) and success (0) in CI scripts.
CRASH_EXIT_CODE = 3


class SimulatedCrash(RuntimeError):
    """Raised by :class:`CrashAfterBatches` to abort a fit mid-epoch."""


class CrashAfterBatches(TrainerCallback):
    """Kill training after ``n`` optimiser steps (counted across epochs).

    With ``hard=False`` (default) the crash is a :class:`SimulatedCrash`
    exception — the test harness catches it and the trainer is abandoned
    with whatever state its checkpoints captured.  With ``hard=True`` the
    process dies on the spot via ``os._exit(CRASH_EXIT_CODE)``, which is
    the closest a test can get to SIGKILL while staying portable: no
    destructors, no buffered writes, no graceful anything.
    """

    def __init__(self, n: int, hard: bool = False):
        if n < 1:
            raise ValueError(f"crash batch count must be >= 1, got {n}")
        self.n = n
        self.hard = hard
        self.batches_seen = 0

    def on_batch_end(self, trainer, epoch: int, day: int,
                     loss: float) -> None:
        self.batches_seen += 1
        if self.batches_seen >= self.n:
            if self.hard:
                os._exit(CRASH_EXIT_CODE)
            raise SimulatedCrash(
                f"simulated crash after {self.batches_seen} batches "
                f"(epoch {epoch}, day {day})")


def corrupt_archive(path: Union[str, Path], mode: str = "truncate",
                    seed: Optional[int] = 0) -> Path:
    """Damage a checkpoint file in place; returns the path.

    Modes
    -----
    ``"truncate"``
        Drop the trailing 25% of the file (minimum 64 bytes), the
        signature of a write interrupted by a crash or full disk.
    ``"flip"``
        Flip 32 random bytes in the middle half of the file, the
        signature of bit rot or a partial overwrite; the zip container
        often still opens, so only checksum verification catches it.
    ``"empty"``
        Truncate to zero bytes.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"cannot corrupt {path}: no such file")
    size = path.stat().st_size
    if mode == "truncate":
        keep = max(0, min(size - 64, int(size * 0.75)))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    elif mode == "flip":
        rng = np.random.default_rng(seed)
        data = bytearray(path.read_bytes())
        if len(data) < 8:
            raise ValueError(f"{path} is too small to flip bytes in")
        low, high = len(data) // 4, max(len(data) // 4 + 1,
                                        3 * len(data) // 4)
        for offset in rng.integers(low, high, size=32):
            data[int(offset)] ^= 0xFF
        path.write_bytes(bytes(data))
    elif mode == "empty":
        with open(path, "r+b") as handle:
            handle.truncate(0)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}; expected "
                         "'truncate', 'flip', or 'empty'")
    return path
