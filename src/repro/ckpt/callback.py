"""Trainer integration: the :class:`CheckpointCallback`.

Rides the PR-1 :class:`~repro.core.callbacks.TrainerCallback` event API:
after every epoch (and optionally every N batches) it asks the trainer
for a full :class:`~repro.ckpt.checkpoint.TrainingCheckpoint` and hands
it to a :class:`~repro.ckpt.manager.CheckpointManager`.  The callback is
also the trainer's rollback anchor: when ``TrainConfig.nan_policy`` is
``"rollback"`` and a non-finite loss appears, the trainer restores the
manager's last good checkpoint through this callback.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from ..core.callbacks import TrainerCallback
from .checkpoint import TrainingCheckpoint
from .manager import CheckpointManager


class CheckpointCallback(TrainerCallback):
    """Periodically checkpoints a fit through a :class:`CheckpointManager`.

    Parameters
    ----------
    directory_or_manager:
        Where checkpoints go; a path creates a manager with ``keep_last``.
    every_n_batches:
        Also checkpoint mid-epoch, every N optimiser steps (``None`` =
        epoch boundaries only).  Mid-epoch checkpoints are what make a
        kill-at-batch-*k* crash resumable without replaying the epoch.
    save_best:
        Mirror the early-stopping best state into ``best.npz`` whenever
        the trainer reports an improvement.
    keep_last:
        Retention for the created manager (ignored when a manager is
        passed in).
    metadata:
        Extra user metadata merged into every checkpoint saved (e.g. the
        registry model name and market, which :mod:`repro.serve` reads to
        reconstruct the model without operator overrides).
    recorder:
        Optional observer called after every save with ``(path,
        epoch=..., batch_index=..., size_bytes=..., write_seconds=...,
        is_best=...)`` — e.g.
        :meth:`repro.store.StoreCallback.record_checkpoint`, which lands
        each write in the experiment store's ``checkpoints`` table.
    """

    def __init__(self, directory_or_manager: Union[str, Path,
                                                   CheckpointManager],
                 every_n_batches: Optional[int] = None,
                 save_best: bool = True, keep_last: int = 3,
                 metadata: Optional[Dict[str, object]] = None,
                 recorder: Optional[object] = None):
        if isinstance(directory_or_manager, CheckpointManager):
            self.manager = directory_or_manager
        else:
            self.manager = CheckpointManager(directory_or_manager,
                                             keep_last=keep_last)
        if every_n_batches is not None and every_n_batches < 1:
            raise ValueError("every_n_batches must be >= 1 when given, "
                             f"got {every_n_batches}")
        self.every_n_batches = every_n_batches
        self.save_best = save_best
        self.recorder = recorder
        self.metadata = dict(metadata or {})
        self._batches_since_save = 0
        self._last_best_val: Optional[float] = None
        self.last_path: Optional[Path] = None

    # ------------------------------------------------------------------
    def on_epoch_start(self, trainer, epoch: int) -> None:
        self._batches_since_save = 0

    def on_batch_end(self, trainer, epoch: int, day: int,
                     loss: float) -> None:
        if self.every_n_batches is None:
            return
        self._batches_since_save += 1
        if self._batches_since_save >= self.every_n_batches:
            self._batches_since_save = 0
            self._save(trainer)

    def on_epoch_end(self, trainer, epoch: int, mean_loss: float) -> None:
        self._save(trainer)

    def on_fit_end(self, trainer, losses) -> None:
        self._save(trainer)

    # ------------------------------------------------------------------
    def _save(self, trainer) -> None:
        checkpoint: TrainingCheckpoint = trainer.state_dict()
        if self.metadata:
            checkpoint.metadata = {**checkpoint.metadata, **self.metadata}
        is_best = False
        if self.save_best and checkpoint.best_model_state is not None:
            best_val = checkpoint.early_stopping.get("best_val")
            if best_val is not None and best_val != self._last_best_val:
                self._last_best_val = best_val
                is_best = True
        bytes_before = self.manager.bytes_written
        seconds_before = self.manager.write_seconds
        self.last_path = self.manager.save(checkpoint, is_best=is_best)
        if self.recorder is not None:
            self.recorder(
                self.last_path,
                epoch=getattr(checkpoint, "epoch", None),
                batch_index=getattr(checkpoint, "batch_index", None),
                size_bytes=self.manager.bytes_written - bytes_before,
                write_seconds=(self.manager.write_seconds
                               - seconds_before),
                is_best=is_best)
