"""Generic POSIX shared-memory primitives (segments, views, seqlock).

Two subsystems share one physical copy of model arrays across processes:

- the cluster serving tier (:mod:`repro.serve.shm`) publishes immutable
  per-generation weight segments and hot-swaps between them;
- the intra-run data-parallel trainer (:mod:`repro.dist`) keeps the
  *live* parameters and Adam moments in one mutable segment that the
  parent updates in place and forked workers read zero-copy.

This module holds the layout and synchronization pieces both need:

- :func:`publish_state` / :func:`attach_state` — write/map a dict of
  arrays as one self-describing segment (8-byte little-endian header
  length, JSON header, 64-byte-aligned arrays, magic ``repro-shm-v1``);
- :class:`SharedModelState` — a mapped segment with zero-copy
  (optionally writable) NumPy views;
- :func:`adopt_views` — point a model's parameters at shared views
  (validate-then-assign, never half-swapped);
- :class:`GenerationControl` — a tiny seqlock'd uint64 slot carrying
  the current generation number (single writer, many readers).

The serving-specific generation lifecycle (immutable segment per
generation, retire-two-behind) stays in :mod:`repro.serve.shm`.
"""

from __future__ import annotations

import json
import os
import secrets
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

try:                                     # gate: platforms without shm
    from multiprocessing import shared_memory as _shm
except ImportError:                      # pragma: no cover - exotic builds
    _shm = None

__all__ = ["ShmUnavailableError", "SharedModelState", "GenerationControl",
           "publish_state", "attach_state", "adopt_views", "shm_available",
           "default_base_name"]

#: every array starts on a 64-byte boundary (cache line; keeps any dtype
#: aligned no matter what precedes it)
_ALIGN = 64
#: segment layout: 8-byte little-endian header length, JSON header, arrays
_LEN_FMT = "<Q"
_LEN_SIZE = struct.calcsize(_LEN_FMT)
#: control segment: seqlock counter + current generation, both uint64
_CTL_FMT = "<QQ"
_CTL_SIZE = struct.calcsize(_CTL_FMT)


class ShmUnavailableError(RuntimeError):
    """POSIX shared memory is not usable on this platform."""


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is importable here."""
    return _shm is not None


def _require_shm():
    if _shm is None:
        raise ShmUnavailableError(
            "multiprocessing.shared_memory is unavailable on this "
            "platform; run the serving tier in threaded mode "
            "(ServeConfig(mode='threaded')) and training with "
            "dist_workers=0")
    return _shm


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def default_base_name(prefix: str = "repro-serve") -> str:
    """A collision-resistant base name for one owner's segments."""
    return f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}"


class SharedModelState:
    """One mapped segment of named arrays: shm handle + parsed layout.

    Obtain via :func:`publish_state` (owner side) or
    :func:`attach_state` (reader side); the distinction only matters for
    :meth:`unlink`, which the owner calls exactly once per segment.
    """

    def __init__(self, shm, header: Dict[str, Any], owner: bool):
        self.shm = shm
        self.header = header
        self.owner = owner
        self.generation = int(header["generation"])
        self.version = str(header["version"])
        self._views: Dict[bool, Dict[str, np.ndarray]] = {}

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def nbytes(self) -> int:
        return self.shm.size

    def views(self, writable: bool = False) -> Dict[str, np.ndarray]:
        """Zero-copy array views over the shared buffer.

        Read-only by default — the serving tier's workers must fail
        loudly on an accidental in-place update.  ``writable=True`` is
        the data-parallel trainer's mode: the parent's optimizer steps
        parameters in place so every attached worker sees the update
        without any copy.  The returned arrays alias ``self.shm.buf``;
        they stay valid exactly as long as this object is kept alive and
        not closed.
        """
        cached = self._views.get(bool(writable))
        if cached is None:
            cached = {}
            for entry in self.header["entries"]:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(entry["shape"])
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                view = np.frombuffer(self.shm.buf, dtype=dtype,
                                     count=count,
                                     offset=int(entry["offset"]))
                view = view.reshape(shape)
                view.flags.writeable = bool(writable)
                cached[entry["name"]] = view
            self._views[bool(writable)] = cached
        return cached

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of every array (for callers that must own the memory)."""
        return {name: np.array(view) for name, view in self.views().items()}

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self._views = {}
        try:
            self.shm.close()
        except (OSError, BufferError):      # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; mappings stay alive)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:           # pragma: no cover - already gone
            pass


def publish_state(state: Dict[str, np.ndarray], name: str, *,
                  generation: int = 0,
                  version: str = "",
                  extra: Optional[Dict[str, Any]] = None
                  ) -> SharedModelState:
    """Write a state dict into a new shared segment called ``name``.

    The serving tier treats the result as immutable (hot swap publishes
    a *new* segment); the data-parallel trainer instead mutates the
    arrays in place through writable views and serializes readers with a
    :class:`GenerationControl`.
    """
    shm_mod = _require_shm()
    entries: List[Dict[str, Any]] = []
    arrays: List[Tuple[np.ndarray, int]] = []
    # Two passes: the header must know every offset, but offsets depend
    # on the header length.  Fix the header length by first rendering it
    # with placeholder offsets of the same width (offsets are ints, so
    # render with the final values computed against a header whose size
    # is measured from a maximal-width draft).
    def render(entries_: List[Dict[str, Any]]) -> bytes:
        payload = {"magic": "repro-shm-v1", "generation": int(generation),
                   "version": str(version), "entries": entries_,
                   **(extra or {})}
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def contiguous(value) -> np.ndarray:
        array = np.asarray(value)
        # np.ascontiguousarray promotes 0-d to 1-d; 0-d is always
        # contiguous, so only reach for it when actually needed.
        return (array if array.flags.c_contiguous
                else np.ascontiguousarray(array))

    items = [(key, contiguous(value)) for key, value in state.items()]
    draft_entries = [{"name": key, "dtype": arr.dtype.str,
                      "shape": list(arr.shape), "offset": 2 ** 62}
                     for key, arr in items]
    header_len = len(render(draft_entries))
    data_start = _align(_LEN_SIZE + header_len)
    offset = data_start
    for (key, arr), entry in zip(items, draft_entries):
        entry["offset"] = offset
        arrays.append((arr, offset))
        offset = _align(offset + arr.nbytes)
        entries.append(entry)
    header_bytes = render(entries)
    # Offsets rendered shorter than the 2**62 placeholder leave the
    # header shorter than measured — pad with spaces (valid JSON suffix
    # whitespace) so data_start stays where the offsets say it is.
    header_bytes += b" " * (header_len - len(header_bytes))
    total = max(offset, data_start + 1)
    shm = shm_mod.SharedMemory(name=name, create=True, size=total)
    shm.buf[:_LEN_SIZE] = struct.pack(_LEN_FMT, header_len)
    shm.buf[_LEN_SIZE:_LEN_SIZE + header_len] = header_bytes
    for arr, off in arrays:
        dest = np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size,
                             offset=off).reshape(arr.shape)
        dest[...] = arr
    return SharedModelState(shm, json.loads(header_bytes), owner=True)


def attach_state(name: str) -> SharedModelState:
    """Map an existing published segment (zero-copy)."""
    shm_mod = _require_shm()
    shm = shm_mod.SharedMemory(name=name, create=False)
    (header_len,) = struct.unpack_from(_LEN_FMT, shm.buf, 0)
    raw = bytes(shm.buf[_LEN_SIZE:_LEN_SIZE + header_len])
    header = json.loads(raw)
    if header.get("magic") != "repro-shm-v1":
        shm.close()
        raise ValueError(f"segment {name!r} is not a repro weight segment")
    return SharedModelState(shm, header, owner=False)


def adopt_views(model, views: Dict[str, np.ndarray]) -> None:
    """Point every parameter of ``model`` at the shared views (no copy).

    Unlike ``load_state_dict`` (which copies into the existing arrays),
    this swaps the parameter storage itself, so N processes share one
    physical copy of the weights.  Pass read-only views for inference
    workers (an accidental in-place update fails loudly instead of
    corrupting every sibling) and writable views for the data-parallel
    parent (whose in-place optimizer step *is* the broadcast).
    """
    own = dict(model.named_parameters())
    missing = sorted(set(own) - set(views))
    if missing:
        raise KeyError(f"shared state lacks parameters: {missing}")
    # Validate everything before assigning anything: a mismatch found
    # halfway through must not leave the model half-swapped (the caller
    # keeps serving the old weights after catching the error).
    for name, param in own.items():
        view = views[name]
        if param.data.shape != view.shape:
            raise ValueError(
                f"shape mismatch adopting {name!r}: parameter is "
                f"{param.data.shape}, shared view is {view.shape}")
        if param.data.dtype != view.dtype:
            raise ValueError(
                f"dtype mismatch adopting {name!r}: parameter is "
                f"{param.data.dtype}, shared view is {view.dtype}")
    for name, param in own.items():
        param.data = views[name]
        param.grad = None


class GenerationControl:
    """The seqlock'd current-generation slot in a ``<base>-ctl`` segment.

    One writer, many readers.  The write protocol makes the sequence
    odd, stores the generation, then makes the sequence even again; a
    reader that observes an odd or changing sequence simply retries, so
    a torn read can never surface.  The serving tier's generation is a
    published-segment counter; the data-parallel trainer's is the
    optimizer step count.
    """

    def __init__(self, shm, owner: bool):
        self.shm = shm
        self.owner = owner

    @classmethod
    def create(cls, name: str) -> "GenerationControl":
        shm = _require_shm().SharedMemory(name=name, create=True,
                                          size=_CTL_SIZE)
        shm.buf[:_CTL_SIZE] = struct.pack(_CTL_FMT, 0, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "GenerationControl":
        shm = _require_shm().SharedMemory(name=name, create=False)
        return cls(shm, owner=False)

    def publish(self, generation: int) -> None:
        """Store a new current generation (single-writer only)."""
        (seq, _) = struct.unpack_from(_CTL_FMT, self.shm.buf, 0)
        struct.pack_into("<Q", self.shm.buf, 0, seq + 1)      # odd: writing
        struct.pack_into("<Q", self.shm.buf, struct.calcsize("<Q"),
                         int(generation))
        struct.pack_into("<Q", self.shm.buf, 0, seq + 2)      # even: done

    def current(self) -> int:
        """The current generation (retries across in-progress writes)."""
        while True:
            seq1, generation = struct.unpack_from(_CTL_FMT, self.shm.buf, 0)
            if seq1 % 2:
                continue
            seq2, _ = struct.unpack_from(_CTL_FMT, self.shm.buf, 0)
            if seq1 == seq2:
                return int(generation)

    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):      # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:           # pragma: no cover - already gone
            pass
