"""Wilcoxon signed-rank tests (paper §V-C-1).

The paper reports the significance of RT-GCN's wins with two variants:

- the *paired* test on 15 pairs of (RT-GCN, strongest-baseline) results
  (Table IV), and
- the *one-sample* test of 15 RT-GCN results against a fixed published
  number (Table V).

Both reduce to the signed-rank statistic of a difference sample.  For small
``n`` (≤ 25) the exact null distribution of ``W⁺`` is enumerated by dynamic
programming; larger samples use the normal approximation with tie and
continuity corrections.  The implementation is validated against
``scipy.stats.wilcoxon`` in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

_EXACT_LIMIT = 25


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a signed-rank test."""

    statistic: float       # W+ = sum of ranks of positive differences
    p_value: float
    n_used: int            # sample size after dropping zero differences
    alternative: str

    def significant(self, level: float = 0.05) -> bool:
        """The paper's rule-of-thumb significance check."""
        return self.p_value < level


def _signed_ranks(differences: np.ndarray) -> tuple:
    """Drop zeros, rank |d| with mid-ranks for ties; return (ranks, signs)."""
    nonzero = differences[differences != 0.0]
    if nonzero.size == 0:
        raise ValueError("all differences are zero; the test is undefined")
    magnitudes = np.abs(nonzero)
    order = np.argsort(magnitudes, kind="stable")
    ranks = np.empty_like(magnitudes)
    sorted_mag = magnitudes[order]
    # Mid-rank assignment for tied magnitudes.
    position = 0
    while position < sorted_mag.size:
        tie_end = position
        while (tie_end + 1 < sorted_mag.size
               and sorted_mag[tie_end + 1] == sorted_mag[position]):
            tie_end += 1
        mid = (position + tie_end) / 2.0 + 1.0
        ranks[order[position:tie_end + 1]] = mid
        position = tie_end + 1
    return ranks, np.sign(nonzero)


def _exact_distribution(n: int) -> np.ndarray:
    """Null pmf of W+ for sample size ``n`` (no ties), by convolution."""
    max_sum = n * (n + 1) // 2
    counts = np.zeros(max_sum + 1)
    counts[0] = 1.0
    for rank in range(1, n + 1):
        shifted = np.zeros_like(counts)
        shifted[rank:] = counts[:max_sum + 1 - rank]
        counts = counts + shifted
    return counts / counts.sum()


def _exact_p(w_plus: float, n: int, alternative: str) -> float:
    pmf = _exact_distribution(n)
    values = np.arange(pmf.size)
    if alternative == "greater":
        return float(pmf[values >= w_plus].sum())
    if alternative == "less":
        return float(pmf[values <= w_plus].sum())
    # two-sided: double the smaller tail, capped at 1
    tail = min(pmf[values >= w_plus].sum(), pmf[values <= w_plus].sum())
    return float(min(1.0, 2.0 * tail))


def _normal_p(w_plus: float, ranks: np.ndarray, alternative: str) -> float:
    from scipy.stats import norm

    n = ranks.size
    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction (mid-ranks reduce the variance).
    _, counts = np.unique(ranks, return_counts=True)
    variance -= (counts ** 3 - counts).sum() / 48.0
    sd = float(np.sqrt(variance))
    if sd == 0:
        raise ValueError("zero variance in signed ranks (all ties)")
    if alternative == "greater":
        z = (w_plus - mean - 0.5) / sd
        return float(norm.sf(z))
    if alternative == "less":
        z = (w_plus - mean + 0.5) / sd
        return float(norm.cdf(z))
    z = (w_plus - mean - np.sign(w_plus - mean) * 0.5) / sd
    return float(2.0 * norm.sf(abs(z)))


def wilcoxon_signed_rank(differences: Sequence[float],
                         alternative: str = "two-sided") -> WilcoxonResult:
    """Signed-rank test on a sample of differences.

    ``alternative="greater"`` tests whether the differences are shifted
    above zero (the paper's directional claim "our model outperforms the
    baseline").
    """
    if alternative not in ("two-sided", "greater", "less"):
        raise ValueError(f"unknown alternative {alternative!r}")
    diffs = np.asarray(list(differences), dtype=np.float64)
    if diffs.ndim != 1 or diffs.size < 2:
        raise ValueError("need a 1-D sample of at least 2 differences")
    ranks, signs = _signed_ranks(diffs)
    w_plus = float(ranks[signs > 0].sum())
    n = ranks.size
    has_ties = np.unique(ranks).size != n
    if n <= _EXACT_LIMIT and not has_ties:
        p = _exact_p(w_plus, n, alternative)
    else:
        p = _normal_p(w_plus, ranks, alternative)
    return WilcoxonResult(statistic=w_plus, p_value=p, n_used=n,
                          alternative=alternative)


def paired_wilcoxon(sample_a: Sequence[float], sample_b: Sequence[float],
                    alternative: str = "greater") -> WilcoxonResult:
    """Paired test of ``a_i − b_i`` (Table IV: RT-GCN run i vs baseline run i)."""
    a = np.asarray(list(sample_a), dtype=np.float64)
    b = np.asarray(list(sample_b), dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"paired samples must match: {a.shape} vs {b.shape}")
    return wilcoxon_signed_rank(a - b, alternative=alternative)


def one_sample_wilcoxon(sample: Sequence[float], reference: float,
                        alternative: str = "greater") -> WilcoxonResult:
    """Test a sample against a fixed reference (Table V: published value)."""
    values = np.asarray(list(sample), dtype=np.float64)
    return wilcoxon_signed_rank(values - reference, alternative=alternative)
