"""Statistics: Wilcoxon signed-rank tests and run summaries."""

from .summary import RunSummary, improvement_percent, summarize_runs
from .wilcoxon import (WilcoxonResult, one_sample_wilcoxon, paired_wilcoxon,
                       wilcoxon_signed_rank)

__all__ = [
    "WilcoxonResult", "wilcoxon_signed_rank", "paired_wilcoxon",
    "one_sample_wilcoxon",
    "RunSummary", "summarize_runs", "improvement_percent",
]
