"""Summaries of repeated experiment runs (the paper averages 15 runs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class RunSummary:
    """Mean/std/extremes of one metric over repeated runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n_runs: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RunSummary":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot summarize an empty run list")
        return cls(mean=float(arr.mean()),
                   std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                   minimum=float(arr.min()), maximum=float(arr.max()),
                   n_runs=int(arr.size))

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} (n={self.n_runs})"


def summarize_runs(runs: List[Dict[str, float]]) -> Dict[str, RunSummary]:
    """Aggregate a list of per-run metric dicts into per-metric summaries."""
    if not runs:
        raise ValueError("no runs to summarize")
    keys = runs[0].keys()
    for run in runs:
        if run.keys() != keys:
            raise ValueError("runs report inconsistent metric sets")
    return {key: RunSummary.from_values([run[key] for run in runs])
            for key in keys}


def improvement_percent(ours: float, baseline: float) -> float:
    """Relative improvement reported in Table IV's last rows."""
    if baseline == 0:
        raise ValueError("baseline metric is zero; improvement undefined")
    return (ours - baseline) / abs(baseline) * 100.0
