"""Daily buy-sell backtester (§V-B-1).

The trading assumptions follow the paper (and [9], [10]): buy the top-``N``
scored stocks at day ``t``'s close, sell at day ``t+1``'s close, equal
weight, no transaction costs, no capital constraints.  Besides the headline
cumulative IRR this records risk statistics (volatility, Sharpe, max
drawdown) used in the examples and extended analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .metrics import daily_topn_returns


@dataclass
class BacktestResult:
    """Outcome of a daily top-N strategy over the test period."""

    daily_returns: np.ndarray       # (days,)
    top_n: int

    @property
    def cumulative_return(self) -> float:
        """The paper's IRR: plain sum of daily returns."""
        return float(self.daily_returns.sum())

    @property
    def curve(self) -> np.ndarray:
        """Cumulative IRR per day (Figure 6 series)."""
        return np.cumsum(self.daily_returns)

    @property
    def compounded_return(self) -> float:
        """Geometric (reinvested) return over the period."""
        return float(np.prod(1.0 + self.daily_returns) - 1.0)

    @property
    def volatility(self) -> float:
        """Standard deviation of daily returns."""
        if self.daily_returns.size < 2:
            return 0.0
        return float(self.daily_returns.std(ddof=1))

    @property
    def sharpe(self) -> float:
        """Annualized Sharpe ratio (252 trading days, zero risk-free)."""
        vol = self.volatility
        if vol == 0.0:
            return 0.0
        return float(self.daily_returns.mean() / vol * np.sqrt(252))

    @property
    def max_drawdown(self) -> float:
        """Largest peak-to-trough drop of the cumulative curve (≥ 0)."""
        curve = self.curve
        peaks = np.maximum.accumulate(curve)
        return float(np.max(peaks - curve, initial=0.0))

    @property
    def hit_rate(self) -> float:
        """Fraction of profitable days."""
        if self.daily_returns.size == 0:
            return 0.0
        return float((self.daily_returns > 0).mean())

    def summary(self) -> dict:
        return {
            "top_n": self.top_n,
            "days": int(self.daily_returns.size),
            "irr": self.cumulative_return,
            "compounded": self.compounded_return,
            "volatility": self.volatility,
            "sharpe": self.sharpe,
            "max_drawdown": self.max_drawdown,
            "hit_rate": self.hit_rate,
        }


def run_backtest(predictions: np.ndarray, actuals: np.ndarray,
                 top_n: int, cost_bps: float = 0.0) -> BacktestResult:
    """Backtest the daily buy-sell strategy on model scores.

    Parameters
    ----------
    predictions, actuals:
        ``(days, stocks)`` matrices of model scores and realized next-day
        return ratios over the test period.
    top_n:
        Portfolio size (the paper evaluates N ∈ {1, 5, 10}).
    cost_bps:
        Round-trip transaction cost in basis points, charged on the
        *turnover* fraction of the portfolio each day (positions held on
        consecutive days are not re-traded).  The paper assumes zero cost;
        this extension quantifies how much of the IRR survives realistic
        frictions.
    """
    returns = daily_topn_returns(predictions, actuals, top_n)
    if cost_bps:
        if cost_bps < 0:
            raise ValueError(f"cost_bps must be >= 0, got {cost_bps}")
        predictions = np.atleast_2d(np.asarray(predictions, dtype=np.float64))
        picks = np.argpartition(-predictions, top_n - 1,
                                axis=1)[:, :top_n]
        cost_rate = cost_bps / 10_000.0
        costs = np.empty(len(returns))
        costs[0] = cost_rate                     # initial full buy-in
        previous = set(picks[0].tolist())
        for day in range(1, len(returns)):
            current = set(picks[day].tolist())
            turnover = len(current - previous) / top_n
            costs[day] = cost_rate * turnover
            previous = current
        returns = returns - costs
    return BacktestResult(daily_returns=returns, top_n=top_n)


def oracle_backtest(actuals: np.ndarray, top_n: int) -> BacktestResult:
    """Upper bound: trade with perfect knowledge of next-day returns."""
    actuals = np.asarray(actuals, dtype=np.float64)
    return run_backtest(actuals, actuals, top_n)


def random_backtest(actuals: np.ndarray, top_n: int,
                    rng: Optional[np.random.Generator] = None
                    ) -> BacktestResult:
    """Baseline for the classification models: random top-N picks.

    The paper notes that classification methods "cannot rank the stocks ...
    so we randomly select top-N stocks to calculate IRR" among their
    predicted-up class; this helper provides the fully random floor.
    """
    gen = rng if rng is not None else np.random.default_rng()
    actuals = np.asarray(actuals, dtype=np.float64)
    scores = gen.uniform(size=actuals.shape)
    return run_backtest(scores, actuals, top_n)
