"""Evaluation: metrics, backtests, indices, protocol, speed, case study."""

from .backtest import (BacktestResult, oracle_backtest, random_backtest,
                       run_backtest)
from .case_study import CaseStudy, find_connected_clique, run_case_study
from .grid import (GridPoint, GridSearchResult, PAPER_ALPHA_GRID,
                   PAPER_WINDOW_GRID, grid_search, validation_split)
from .indices import (cap_weighted_index, index_cumulative_returns,
                      market_index_curves, price_weighted_index)
from .metrics import (daily_topn_returns, irr, irr_curve, kendall_tau, mrr,
                      ndcg_at_n, precision_at_n, ranking_metrics,
                      reciprocal_rank_of_top1)
from .protocol import (ExperimentResult, JournalMismatchError,
                       compare_paired, compare_to_published,
                       run_experiment, run_named_experiment,
                       strongest_baseline)
from .speed import SpeedMeasurement, measure_speed, speed_comparison

__all__ = [
    "mrr", "irr", "irr_curve", "daily_topn_returns", "precision_at_n",
    "ndcg_at_n", "kendall_tau", "ranking_metrics",
    "reciprocal_rank_of_top1",
    "BacktestResult", "run_backtest", "oracle_backtest", "random_backtest",
    "cap_weighted_index", "price_weighted_index", "index_cumulative_returns",
    "market_index_curves",
    "ExperimentResult", "JournalMismatchError", "run_experiment",
    "run_named_experiment",
    "compare_paired", "compare_to_published", "strongest_baseline",
    "SpeedMeasurement", "measure_speed", "speed_comparison",
    "CaseStudy", "run_case_study", "find_connected_clique",
    "grid_search", "GridSearchResult", "GridPoint", "validation_split",
    "PAPER_WINDOW_GRID", "PAPER_ALPHA_GRID",
]
