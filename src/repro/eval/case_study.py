"""Figure 8 case study: qualitative prediction analysis of a 5-stock clique.

The paper visualizes (a) the relational subgraph of five connected NASDAQ
stocks with learned edge widths, (b) their metadata, (c) the heatmap of the
model's daily return-ratio predictions over a month of the test period, and
(d) the normalized ground-truth prices.  This module extracts all four
artifacts from a trained model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.model import RTGCN
from ..core.trainer import TrainConfig, Trainer
from ..data import StockDataset
from ..graph.strategies import TimeSensitiveStrategy, WeightStrategy
from ..tensor import Tensor, no_grad


@dataclass
class CaseStudy:
    """Artifacts of the Figure 8 panel for a chosen stock subset."""

    symbols: List[str]                  # panel (b): stock identities
    industries: List[str]
    edge_weights: np.ndarray            # panel (a): (k, k) learned weights
    relation_kinds: np.ndarray          # (k, k) 0=no edge, 1=industry, 2=wiki+
    predicted_heatmap: np.ndarray       # panel (c): (k, days) scores
    actual_heatmap: np.ndarray          # (k, days) true return ratios
    normalized_prices: np.ndarray       # panel (d): (k, days) p_t / p_0
    days: List[int]


def find_connected_clique(dataset: StockDataset, size: int = 5) -> List[int]:
    """Pick ``size`` stocks forming a well-connected relational subgraph.

    Greedy: seed with the highest-degree stock, then repeatedly add the
    stock with the most links into the current set.
    """
    adjacency = dataset.relations.binary_adjacency()
    if adjacency.shape[0] < size:
        raise ValueError(f"universe of {adjacency.shape[0]} stocks cannot "
                         f"supply a subset of {size}")
    chosen = [int(np.argmax(adjacency.sum(axis=1)))]
    while len(chosen) < size:
        links = adjacency[:, chosen].sum(axis=1)
        links[chosen] = -1.0
        chosen.append(int(np.argmax(links)))
    return chosen


def _learned_edge_weights(model: RTGCN, features: Tensor,
                          subset: Sequence[int]) -> np.ndarray:
    """Extract the model's learned pairwise weights on the subset.

    For the weight/time-sensitive strategies this is the strategy's raw
    weighted adjacency (averaged over time for the latter); the uniform
    strategy reports the binary adjacency.
    """
    layer = model._modules["layer0"]
    if layer.relational is None:
        raise ValueError("case study needs a model with relational "
                         "convolution")
    strategy = layer.relational.strategy
    idx = np.asarray(list(subset))
    with no_grad():
        if isinstance(strategy, TimeSensitiveStrategy):
            adj = strategy(features).data.mean(axis=0)
        elif isinstance(strategy, WeightStrategy):
            adj = strategy.raw_adjacency().data
        else:
            adj = strategy.relations.binary_adjacency()
    return adj[np.ix_(idx, idx)].copy()


def run_case_study(dataset: StockDataset, model: Optional[RTGCN] = None,
                   config: Optional[TrainConfig] = None,
                   subset: Optional[Sequence[int]] = None,
                   num_days: int = 22, seed: int = 0) -> CaseStudy:
    """Train (if needed) and extract the Figure 8 artifacts.

    Parameters
    ----------
    dataset:
        Market to study.
    model:
        A trained RT-GCN; when ``None`` a time-sensitive RT-GCN is trained
        with ``config``.
    subset:
        Stock indices to visualize; defaults to a connected 5-clique.
    num_days:
        Length of the test-period excerpt (the paper shows one month).
    """
    cfg = config if config is not None else TrainConfig()
    if model is None:
        model = RTGCN(dataset.relations, num_features=cfg.num_features,
                      strategy="time",
                      rng=np.random.default_rng(seed))
        Trainer(model, dataset, cfg).train()
    chosen = list(subset) if subset is not None \
        else find_connected_clique(dataset, 5)

    _, test_days = dataset.split(cfg.window)
    days = test_days[:num_days]
    trainer = Trainer(model, dataset, cfg)
    predictions = trainer.predict(days)          # (days, N)
    actuals = np.stack([dataset.label(day) for day in days])

    idx = np.asarray(chosen)
    first_day = days[0]
    prices = dataset.prices[idx][:, first_day:days[-1] + 1]
    normalized = prices / prices[:, :1]

    features = Tensor(dataset.features(days[0], cfg.window,
                                       cfg.num_features))
    weights = _learned_edge_weights(model, features, chosen)

    sub_rel = dataset.relations.subgraph(chosen)
    kinds = np.zeros((len(chosen), len(chosen)))
    binary = sub_rel.binary_adjacency()
    kinds[binary > 0] = 1.0
    wiki_types = [i for i, name in enumerate(sub_rel.type_names)
                  if name.startswith("wiki:")]
    if wiki_types:
        wiki_adj = (sub_rel.tensor[:, :, wiki_types].sum(axis=2) > 0)
        kinds[wiki_adj] = 2.0

    universe = dataset.universe
    return CaseStudy(
        symbols=[universe[i].symbol for i in chosen],
        industries=[universe[i].industry for i in chosen],
        edge_weights=weights,
        relation_kinds=kinds,
        predicted_heatmap=predictions[:, idx].T.copy(),
        actual_heatmap=actuals[:, idx].T.copy(),
        normalized_prices=normalized,
        days=list(days),
    )
