"""Market-index analogues of DJI / S&P 500 / CSI 300 (Figure 6).

The paper compares its strategies' cumulative returns against the major
index of each market.  With simulated markets, the natural analogue is a
cap-weighted index of the simulated universe (like the S&P 500 / CSI 300)
and a price-weighted index of the largest constituents (like the Dow Jones
Industrial Average, which is price-weighted over 30 blue chips).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data import StockDataset


def cap_weighted_index(prices: np.ndarray, market_caps: np.ndarray
                       ) -> np.ndarray:
    """S&P-style index level: cap-weighted average of normalized prices."""
    prices = np.asarray(prices, dtype=np.float64)
    caps = np.asarray(market_caps, dtype=np.float64)
    if prices.shape[0] != caps.shape[0]:
        raise ValueError(f"{prices.shape[0]} price rows vs {caps.shape[0]} "
                         "caps")
    weights = caps / caps.sum()
    normalized = prices / prices[:, :1]
    return normalized.T @ weights


def price_weighted_index(prices: np.ndarray, num_constituents: int = 30
                         ) -> np.ndarray:
    """DJIA-style index level: plain average price of the priciest stocks."""
    prices = np.asarray(prices, dtype=np.float64)
    num_constituents = min(num_constituents, prices.shape[0])
    chosen = np.argsort(-prices[:, 0])[:num_constituents]
    return prices[chosen].mean(axis=0)


def index_cumulative_returns(index_level: np.ndarray,
                             days: Sequence[int]) -> np.ndarray:
    """Cumulative day-over-day return of an index across test days.

    Aligned with the strategies' IRR curves: entry ``d`` is the summed
    daily return ratio of the index from the first test day through the
    ``d``-th, using the same t → t+1 convention as the trading strategy.
    """
    index_level = np.asarray(index_level, dtype=np.float64)
    days = list(days)
    daily = [index_level[d + 1] / index_level[d] - 1.0 for d in days]
    return np.cumsum(daily)


def market_index_curves(dataset: StockDataset, days: Sequence[int]) -> dict:
    """The Figure 6 reference curves for a dataset's market.

    Returns a mapping of index name → cumulative return curve over the test
    days.  US-style markets get both a cap-weighted ("S&P 500") and a
    price-weighted ("DJI") analogue; the CSI market gets the cap-weighted
    "CSI 300" analogue only, matching the figure.
    """
    caps = dataset.universe.market_caps
    cap_level = cap_weighted_index(dataset.prices, caps)
    curves = {}
    if dataset.market.upper().startswith("CSI"):
        curves["CSI 300"] = index_cumulative_returns(cap_level, days)
    else:
        curves["S&P 500"] = index_cumulative_returns(cap_level, days)
        dji_level = price_weighted_index(dataset.prices)
        curves["DJI"] = index_cumulative_returns(dji_level, days)
    return curves
