"""Training/testing speed measurement (Figure 5).

Figure 5 compares wall-clock training and testing time of the
ranking-based models.  The measurement here is per-epoch training time and
full-test-sweep inference time under identical data, so the paper's claim —
pure convolution (RT-GCN, RT-GAT) is several times faster than the
LSTM-based rankers (Rank_LSTM, RSR) — is attributable to the operator mix
alone.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.trainer import TrainConfig, Trainer
from ..data import StockDataset
from ..nn.module import Module
from ..obs.tracer import Tracer, use_tracer

#: timings at or below this are indistinguishable from timer noise; ratios
#: built from them are meaningless and reported as NaN
MIN_MEASURABLE_SECONDS = 1e-6


@dataclass(frozen=True)
class SpeedMeasurement:
    """Wall-clock cost of one model on one dataset.

    ``phases`` holds the tracer breakdown of the measured run:
    ``{phase: {"count": n, "seconds": s}}`` for ``data_prep`` / ``forward``
    / ``backward`` / ``optimizer_step`` / ``inference`` (see
    :mod:`repro.obs`).
    """

    name: str
    train_seconds_per_epoch: float
    test_seconds: float
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict,
                                                compare=False)

    def speedup_over(self, other: "SpeedMeasurement") -> Dict[str, float]:
        """How many times faster this model is than ``other``.

        Sub-resolution timings on *either* side of a ratio make the
        "speedup" pure noise — a zero numerator is as bogus as a zero
        denominator — so such entries are NaN, with a warning.
        """
        out: Dict[str, float] = {}
        pairs = {
            "train": (other.train_seconds_per_epoch,
                      self.train_seconds_per_epoch),
            "test": (other.test_seconds, self.test_seconds),
        }
        for key, (theirs, ours) in pairs.items():
            if (theirs <= MIN_MEASURABLE_SECONDS
                    or ours <= MIN_MEASURABLE_SECONDS):
                warnings.warn(
                    f"{key} speedup of {self.name!r} over {other.name!r} is "
                    f"undefined: measured times ({ours:.3g}s, {theirs:.3g}s)"
                    f" are below the {MIN_MEASURABLE_SECONDS:.0e}s timer "
                    "resolution", RuntimeWarning, stacklevel=2)
                out[key] = float("nan")
            else:
                out[key] = theirs / ours
        return out


def measure_speed(name: str,
                  factory: Callable[[np.random.Generator], Module],
                  dataset: StockDataset,
                  config: Optional[TrainConfig] = None,
                  epochs: int = 1, seed: int = 0) -> SpeedMeasurement:
    """Time ``epochs`` training epochs and one full test sweep."""
    from dataclasses import replace

    cfg = replace(config if config is not None else TrainConfig(),
                  epochs=epochs)
    model = factory(np.random.default_rng(seed))
    trainer = Trainer(model, dataset, cfg)
    _, test_days = dataset.split(cfg.window)

    tracer = Tracer()
    with use_tracer(tracer):
        start = time.perf_counter()
        trainer.fit()
        train_elapsed = (time.perf_counter() - start) / epochs

        start = time.perf_counter()
        trainer.predict(test_days)
        test_elapsed = time.perf_counter() - start
    return SpeedMeasurement(name=name,
                            train_seconds_per_epoch=train_elapsed,
                            test_seconds=test_elapsed,
                            phases=tracer.snapshot())


def speed_comparison(factories: Dict[str, Callable],
                     dataset: StockDataset,
                     config: Optional[TrainConfig] = None,
                     epochs: int = 1,
                     seed: int = 0) -> Dict[str, SpeedMeasurement]:
    """Measure a set of models under identical conditions (Figure 5)."""
    return {name: measure_speed(name, factory, dataset, config=config,
                                epochs=epochs, seed=seed)
            for name, factory in factories.items()}
