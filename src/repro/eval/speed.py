"""Training/testing speed measurement (Figure 5).

Figure 5 compares wall-clock training and testing time of the
ranking-based models.  The measurement here is per-epoch training time and
full-test-sweep inference time under identical data, so the paper's claim —
pure convolution (RT-GCN, RT-GAT) is several times faster than the
LSTM-based rankers (Rank_LSTM, RSR) — is attributable to the operator mix
alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.trainer import TrainConfig, Trainer
from ..data import StockDataset
from ..nn.module import Module


@dataclass(frozen=True)
class SpeedMeasurement:
    """Wall-clock cost of one model on one dataset."""

    name: str
    train_seconds_per_epoch: float
    test_seconds: float

    def speedup_over(self, other: "SpeedMeasurement") -> Dict[str, float]:
        """How many times faster this model is than ``other``."""
        return {
            "train": other.train_seconds_per_epoch
            / max(self.train_seconds_per_epoch, 1e-12),
            "test": other.test_seconds / max(self.test_seconds, 1e-12),
        }


def measure_speed(name: str,
                  factory: Callable[[np.random.Generator], Module],
                  dataset: StockDataset,
                  config: Optional[TrainConfig] = None,
                  epochs: int = 1, seed: int = 0) -> SpeedMeasurement:
    """Time ``epochs`` training epochs and one full test sweep."""
    from dataclasses import replace

    cfg = replace(config if config is not None else TrainConfig(),
                  epochs=epochs)
    model = factory(np.random.default_rng(seed))
    trainer = Trainer(model, dataset, cfg)
    _, test_days = dataset.split(cfg.window)

    start = time.perf_counter()
    trainer.train()
    train_elapsed = (time.perf_counter() - start) / epochs

    start = time.perf_counter()
    trainer.predict(test_days)
    test_elapsed = time.perf_counter() - start
    return SpeedMeasurement(name=name,
                            train_seconds_per_epoch=train_elapsed,
                            test_seconds=test_elapsed)


def speed_comparison(factories: Dict[str, Callable],
                     dataset: StockDataset,
                     config: Optional[TrainConfig] = None,
                     epochs: int = 1,
                     seed: int = 0) -> Dict[str, SpeedMeasurement]:
    """Measure a set of models under identical conditions (Figure 5)."""
    return {name: measure_speed(name, factory, dataset, config=config,
                                epochs=epochs, seed=seed)
            for name, factory in factories.items()}
