"""Multi-run experiment protocol (§V-B-4 and §V-C-1).

"To eliminate the randomness and have a statistically significant result,
we run all models fifteen times and average the performance."  This module
provides exactly that loop: a *model factory* is invoked once per run with
a fresh seeded generator, trained through the shared
:class:`~repro.core.trainer.Trainer`, scored with the ranking metrics, and
the per-run metric dicts are aggregated and compared with the Wilcoxon
machinery.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.trainer import TrainConfig, Trainer, TrainResult
from ..data import StockDataset
from ..nn.module import Module
from ..nn.random import fork_rng
from ..stats import (RunSummary, WilcoxonResult, one_sample_wilcoxon,
                     paired_wilcoxon, summarize_runs)
from .metrics import ranking_metrics

ModelFactory = Callable[[np.random.Generator], Module]

#: schema tag of the experiment-resume state file (v2: runs are keyed by
#: index so parallel workers may complete out of order, and the key
#: carries a config fingerprint so incompatible resumes fail loudly)
_EXPERIMENT_STATE_VERSION = 2


class JournalMismatchError(RuntimeError):
    """A resume journal exists but was written by a different protocol.

    Mixing runs from different ``TrainConfig`` / ``base_seed`` /
    ``n_runs`` invocations would silently corrupt the aggregate, so the
    journal refuses: delete the journal file (or pick another
    ``resume_dir``) to start over deliberately.
    """


def _fingerprint_payload(config: Optional[TrainConfig], n_runs: int,
                         base_seed: int) -> Dict[str, object]:
    """The fields the fingerprint digests, kept so a mismatch can name
    the exact offending field instead of two opaque hashes."""
    return {"config": asdict(config) if config is not None else None,
            "n_runs": n_runs, "base_seed": base_seed}


def _experiment_fingerprint(config: Optional[TrainConfig], n_runs: int,
                            base_seed: int) -> str:
    """Stable digest of everything that shapes the per-run results."""
    payload = _fingerprint_payload(config, n_runs, base_seed)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _fingerprint_field_diffs(theirs: Optional[Dict[str, object]],
                             ours: Optional[Dict[str, object]]
                             ) -> List[str]:
    """Human-readable per-field diffs of two fingerprint payloads.

    Only ``config.*`` entries are reported — ``n_runs`` and
    ``base_seed`` live in the journal key itself and are diffed there.
    """
    if not isinstance(theirs, dict) or not isinstance(ours, dict):
        return []
    their_config = theirs.get("config") or {}
    our_config = ours.get("config") or {}
    if not isinstance(their_config, dict) or \
            not isinstance(our_config, dict):
        return [f"config: journal={theirs.get('config')!r} vs "
                f"requested={ours.get('config')!r}"]
    return [f"config.{key}: journal={their_config.get(key)!r} vs "
            f"requested={our_config.get(key)!r}"
            for key in sorted(set(their_config) | set(our_config))
            if their_config.get(key) != our_config.get(key)]


class _ExperimentJournal:
    """Run-level resume state for a 15-run experiment.

    Each completed run's metrics are recorded under its run index in
    ``<resume_dir>/experiment-<name>.json`` (written atomically through
    :func:`repro.ckpt.atomic_write_bytes`), so an interrupted experiment
    re-executes only the missing runs.  Runs are seeded purely by their
    index, which is what makes skipping completed runs sound: run *k*
    produces the same result whether or not any other run executed in
    this process — and it is also what lets parallel workers record
    completions out of order.

    The journal key carries a fingerprint of the ``TrainConfig`` (plus
    ``n_runs`` and ``base_seed``); re-opening a journal with a different
    protocol raises :class:`JournalMismatchError` instead of silently
    mixing incompatible runs.
    """

    def __init__(self, directory: Union[str, Path], name: str,
                 n_runs: int, base_seed: int,
                 fingerprint: Optional[str] = None,
                 fingerprint_fields: Optional[Dict[str, object]] = None):
        safe = "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in name)
        self.path = Path(directory) / f"experiment-{safe}.json"
        self.key = {"name": name, "n_runs": n_runs, "base_seed": base_seed,
                    "fingerprint": fingerprint}
        #: the fingerprint's raw payload (see ``_fingerprint_payload``);
        #: persisted alongside the key — *not* part of key equality —
        #: so an incompatible resume can name the offending field
        self.fields = fingerprint_fields
        self.rows: Dict[int, Dict[str, object]] = {}
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except json.JSONDecodeError:
                payload = None   # half-written by a dead process: restart
            if payload is None:
                pass
            elif payload.get("version") != _EXPERIMENT_STATE_VERSION:
                warnings.warn(
                    f"ignoring resume journal {self.path} with schema "
                    f"version {payload.get('version')!r} (expected "
                    f"{_EXPERIMENT_STATE_VERSION}); the experiment "
                    "restarts from run 0", RuntimeWarning, stacklevel=3)
            elif payload.get("key") != self.key:
                theirs = payload.get("key") or {}
                diffs = sorted(set(theirs) | set(self.key))
                parts = [f"{k}: journal={theirs.get(k)!r} vs "
                         f"requested={self.key.get(k)!r}"
                         for k in diffs
                         if theirs.get(k) != self.key.get(k)]
                if theirs.get("fingerprint") != self.key.get("fingerprint"):
                    # Resolve the opaque digests into the exact config
                    # field(s) that diverged, when both sides recorded
                    # their fingerprint payloads.
                    field_diffs = _fingerprint_field_diffs(
                        payload.get("fingerprint_fields"), self.fields)
                    parts.extend(field_diffs)
                detail = ", ".join(parts)
                raise JournalMismatchError(
                    f"resume journal {self.path} was written by an "
                    f"incompatible invocation ({detail}); refusing to "
                    "mix runs from different protocols — delete the "
                    "journal (or use a fresh resume_dir) to start over")
            else:
                self.rows = {int(row["run_index"]): dict(row)
                             for row in payload.get("runs", [])}

    @property
    def completed(self) -> int:
        return len(self.rows)

    def record(self, run_index: int, metrics: Dict[str, float],
               train_seconds: float, test_seconds: float) -> None:
        from ..ckpt.checkpoint import atomic_write_bytes

        self.rows[int(run_index)] = {
            "run_index": int(run_index),
            "metrics": {k: float(v) for k, v in metrics.items()},
            "train_seconds": float(train_seconds),
            "test_seconds": float(test_seconds)}
        payload = {"version": _EXPERIMENT_STATE_VERSION, "key": self.key,
                   "runs": [self.rows[i] for i in sorted(self.rows)]}
        if self.fields is not None:
            payload["fingerprint_fields"] = self.fields
        atomic_write_bytes(self.path,
                           (json.dumps(payload, indent=2) + "\n")
                           .encode("utf-8"))


def _epoch_losses(result: object) -> Optional[List[float]]:
    """Per-epoch losses from a TrainResult or PredictorResult, if any."""
    losses = getattr(result, "epoch_losses", None)
    if losses is None:
        losses = getattr(result, "extras", {}).get("epoch_losses")
    return [float(x) for x in losses] if losses is not None else None


@dataclass
class ExperimentResult:
    """All runs of one model on one dataset."""

    name: str
    runs: List[Dict[str, float]]
    train_seconds: List[float]
    test_seconds: List[float]
    #: last run's raw result (TrainResult or PredictorResult — both expose
    #: ``predictions``, ``actuals`` and ``test_days``)
    last_result: Optional[object] = field(default=None, repr=False)
    #: schema-v1 executor report (``RunReport.to_dict()``) when the runs
    #: were fanned out with ``workers > 1``; ``None`` for serial runs
    telemetry: Optional[Dict[str, object]] = field(default=None, repr=False)

    def summary(self) -> Dict[str, RunSummary]:
        return summarize_runs(self.runs)

    def metric_values(self, metric: str) -> List[float]:
        return [run[metric] for run in self.runs]

    def mean(self, metric: str) -> float:
        return float(np.mean(self.metric_values(metric)))


def _run_protocol_loop(name: str, n_runs: int, base_seed: int,
                       resume_dir: Optional[Union[str, Path]],
                       one_run: Callable[[int], "tuple"],
                       workers: int = 1,
                       fingerprint: Optional[str] = None,
                       telemetry_dir: Optional[Union[str, Path]] = None,
                       store: Optional[object] = None,
                       dedup: bool = True,
                       config: Optional[TrainConfig] = None
                       ) -> ExperimentResult:
    """Shared 15-run loop with optional run-level resume and fan-out.

    ``one_run(seed)`` executes a single seeded run and returns
    ``(metrics, result)``.  With ``resume_dir``, completed runs recorded
    by a previous (interrupted) invocation are loaded from the journal
    and skipped; seeds depend only on the run index, so the aggregate is
    identical to an uninterrupted experiment.

    With ``workers > 1`` the missing runs are fanned out across forked
    worker processes (:class:`repro.parallel.ExperimentPool`).  Every
    run is seeded exactly as in the serial loop and nothing in a run
    reads cross-run state, so the aggregated metrics are bitwise-equal
    to serial execution; completed runs are journaled from the parent as
    they arrive, and crashed workers are respawned with their run
    retried (see docs/parallelism.md).

    ``store`` (an :class:`~repro.store.ExperimentStore` or its path)
    writes every completed run through to the experiment database; with
    ``dedup=True`` runs already stored under this protocol's fingerprint
    are restored instead of executed — the cross-invocation analogue of
    the journal (see docs/experiment-store.md).
    """
    fields = (_fingerprint_payload(config, n_runs, base_seed)
              if config is not None else None)
    journal = (_ExperimentJournal(resume_dir, name, n_runs, base_seed,
                                  fingerprint, fingerprint_fields=fields)
               if resume_dir is not None else None)
    store_sink = None
    if store is not None:
        from ..store import StoreSink
        store_sink = StoreSink(store)
    rows: Dict[int, Dict[str, object]] = {}
    if journal is not None:
        rows = {index: row for index, row in journal.rows.items()
                if 0 <= index < n_runs}
    if store_sink is not None and dedup and fingerprint is not None:
        for index, stored in store_sink.store.completed_runs(
                fingerprint, name).items():
            if 0 <= index < n_runs and index not in rows:
                rows[index] = {
                    "metrics": dict(stored.metrics),
                    "train_seconds": (stored.train_seconds
                                      if stored.train_seconds is not None
                                      else float("nan")),
                    "test_seconds": (stored.test_seconds
                                     if stored.test_seconds is not None
                                     else float("nan"))}
    config_dict = asdict(config) if config is not None else None

    def persist(run_index: int, metrics: Dict[str, float],
                train_s: float, test_s: float,
                epoch_losses: Optional[List[float]] = None) -> None:
        if journal is not None:
            journal.record(run_index, metrics, train_s, test_s)
        if store_sink is not None:
            from ..store import RunRecord
            store_sink.write_run(RunRecord(
                experiment=name, run_index=run_index,
                metrics=dict(metrics), train_seconds=float(train_s),
                test_seconds=float(test_s), fingerprint=fingerprint,
                seed=base_seed * 1000 + run_index, config=config_dict,
                n_runs=n_runs, base_seed=base_seed,
                epoch_losses=epoch_losses))

    todo = [index for index in range(n_runs) if index not in rows]
    last = None
    pool = None
    if workers > 1 and len(todo) > 1:
        from ..parallel import ExperimentPool, fork_available
        if not fork_available():
            warnings.warn(
                "repro.parallel needs the 'fork' start method, which "
                "this platform lacks; running the experiment serially",
                RuntimeWarning, stacklevel=3)
        else:
            keep_index = max(todo)

            def run_task(run_index: int):
                seed = base_seed * 1000 + run_index
                metrics, result = one_run(seed)
                # Ship the full result only for the final run (it backs
                # ExperimentResult.last_result); metrics, timings, and
                # epoch losses are all the aggregate/store need from the
                # rest.
                return (metrics, float(result.train_seconds),
                        float(result.test_seconds),
                        _epoch_losses(result),
                        result if run_index == keep_index else None)

            def on_result(run_index: int, payload) -> None:
                metrics, train_s, test_s, losses, _ = payload
                persist(run_index, metrics, train_s, test_s, losses)

            pool = ExperimentPool(min(workers, len(todo)), run_task)
            outcome = pool.run(todo, on_result=on_result)
            for run_index, payload in outcome.items():
                metrics, train_s, test_s, _, result = payload
                rows[run_index] = {"metrics": metrics,
                                   "train_seconds": train_s,
                                   "test_seconds": test_s}
                if result is not None:
                    last = result
            todo = []
    for run_index in todo:
        seed = base_seed * 1000 + run_index
        metrics, result = one_run(seed)
        rows[run_index] = {"metrics": metrics,
                           "train_seconds": result.train_seconds,
                           "test_seconds": result.test_seconds}
        last = result
        persist(run_index, metrics, result.train_seconds,
                result.test_seconds, _epoch_losses(result))
    telemetry = None
    if pool is not None:
        report = pool.telemetry.report(
            kind="parallel",
            config={"experiment": name, "n_runs": n_runs,
                    "base_seed": base_seed,
                    "workers": pool.telemetry.workers})
        telemetry = report.to_dict()
        if telemetry_dir is not None:
            from ..obs import MetricsSink
            MetricsSink(telemetry_dir).write(report)
        if store_sink is not None:
            store_sink.write_report(report)
    ordered = [rows[index] for index in range(n_runs)]
    return ExperimentResult(
        name=name,
        runs=[dict(row["metrics"]) for row in ordered],
        train_seconds=[float(row["train_seconds"]) for row in ordered],
        test_seconds=[float(row["test_seconds"]) for row in ordered],
        last_result=last, telemetry=telemetry)


def run_experiment(name: str, factory: ModelFactory, dataset: StockDataset,
                   config: Optional[TrainConfig] = None, n_runs: int = 15,
                   base_seed: int = 0,
                   top_ns: Sequence[int] = (1, 5, 10),
                   resume_dir: Optional[Union[str, Path]] = None,
                   workers: int = 1,
                   telemetry_dir: Optional[Union[str, Path]] = None,
                   store: Optional[object] = None, dedup: bool = True
                   ) -> ExperimentResult:
    """Train/evaluate a model ``n_runs`` times with independent seeds.

    ``resume_dir`` enables run-level fault tolerance: completed runs are
    journaled there, and a re-invocation after a crash continues at run
    *k* instead of run 0 (``last_result`` is ``None`` when every run was
    restored from the journal).

    ``workers > 1`` fans the runs out across forked worker processes;
    every run keeps its serial seeding, so the aggregated metrics are
    bitwise-identical to ``workers=1`` (dense and sparse graph modes
    alike).  ``telemetry_dir`` additionally writes the executor's
    schema-v1 :class:`~repro.obs.RunReport` there; the same payload is
    available as ``ExperimentResult.telemetry``.

    ``store`` writes every run through the experiment database
    (docs/experiment-store.md): per-epoch losses stream write-through
    from ``Trainer.fit``, run metrics land on completion, and with
    ``dedup=True`` a re-invocation restores already-stored runs (by
    config fingerprint) instead of executing them.
    """
    cfg = config if config is not None else TrainConfig()
    fingerprint = _experiment_fingerprint(cfg, n_runs, base_seed)

    def one_run(seed: int):
        model = factory(fork_rng(seed))
        run_cfg = replace(cfg, seed=seed)
        callbacks = []
        if store is not None:
            from ..store import StoreCallback
            callbacks.append(StoreCallback(
                store, name, fingerprint=fingerprint,
                run_index=seed - base_seed * 1000, seed=seed,
                kind="experiment", config=asdict(run_cfg)))
        result = Trainer(model, dataset, run_cfg).run(callbacks=callbacks)
        metrics = ranking_metrics(result.predictions, result.actuals,
                                  top_ns=top_ns)
        return metrics, result

    return _run_protocol_loop(
        name, n_runs, base_seed, resume_dir, one_run, workers=workers,
        fingerprint=fingerprint, telemetry_dir=telemetry_dir,
        store=store, dedup=dedup, config=cfg)


def run_named_experiment(name: str, dataset: StockDataset,
                         config: Optional[TrainConfig] = None,
                         n_runs: int = 15, base_seed: int = 0,
                         top_ns: Sequence[int] = (1, 5, 10),
                         resume_dir: Optional[Union[str, Path]] = None,
                         workers: int = 1,
                         telemetry_dir: Optional[Union[str, Path]] = None,
                         store: Optional[object] = None,
                         dedup: bool = True) -> ExperimentResult:
    """Run a registry model (Table IV name) for ``n_runs`` seeded repeats.

    Classification models (``can_rank=False``) report ``MRR = NaN``,
    rendering as '-' in the printed tables, exactly like the paper.
    ``resume_dir`` journals completed runs for run-level resume,
    ``workers``/``telemetry_dir`` fan the runs out across processes, and
    ``store``/``dedup`` write through (and restore from) the experiment
    database, as in :func:`run_experiment`.
    """
    from ..baselines.registry import get_spec, make_predictor

    spec = get_spec(name)
    cfg = spec.adapt_config(config if config is not None else TrainConfig())

    def one_run(seed: int):
        predictor = make_predictor(name, dataset, seed=seed)
        run_cfg = replace(cfg, seed=seed)
        result = predictor.fit_predict(dataset, run_cfg)
        metrics = ranking_metrics(result.predictions, result.actuals,
                                  top_ns=top_ns)
        if not spec.can_rank:
            metrics["MRR"] = float("nan")
        return metrics, result

    return _run_protocol_loop(
        name, n_runs, base_seed, resume_dir, one_run, workers=workers,
        fingerprint=_experiment_fingerprint(cfg, n_runs, base_seed),
        telemetry_dir=telemetry_dir, store=store, dedup=dedup,
        config=cfg)


def compare_paired(ours: ExperimentResult, baseline: ExperimentResult,
                   metric: str) -> WilcoxonResult:
    """Table IV significance: paired Wilcoxon of per-run metric values."""
    return paired_wilcoxon(ours.metric_values(metric),
                           baseline.metric_values(metric),
                           alternative="greater")


def compare_to_published(ours: ExperimentResult, metric: str,
                         published_value: float) -> WilcoxonResult:
    """Table V significance: one-sample Wilcoxon vs a published number."""
    return one_sample_wilcoxon(ours.metric_values(metric), published_value,
                               alternative="greater")


def strongest_baseline(results: Dict[str, ExperimentResult],
                       metric: str) -> str:
    """Name of the baseline with the best mean on ``metric``."""
    if not results:
        raise ValueError("no baseline results supplied")
    return max(results, key=lambda name: results[name].mean(metric))
