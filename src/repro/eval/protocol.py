"""Multi-run experiment protocol (§V-B-4 and §V-C-1).

"To eliminate the randomness and have a statistically significant result,
we run all models fifteen times and average the performance."  This module
provides exactly that loop: a *model factory* is invoked once per run with
a fresh seeded generator, trained through the shared
:class:`~repro.core.trainer.Trainer`, scored with the ranking metrics, and
the per-run metric dicts are aggregated and compared with the Wilcoxon
machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.trainer import TrainConfig, Trainer, TrainResult
from ..data import StockDataset
from ..nn.module import Module
from ..nn.random import fork_rng
from ..stats import (RunSummary, WilcoxonResult, one_sample_wilcoxon,
                     paired_wilcoxon, summarize_runs)
from .metrics import ranking_metrics

ModelFactory = Callable[[np.random.Generator], Module]

#: schema tag of the experiment-resume state file
_EXPERIMENT_STATE_VERSION = 1


class _ExperimentJournal:
    """Run-level resume state for a 15-run experiment.

    Each completed run's metrics are appended to
    ``<resume_dir>/experiment-<name>.json`` (written atomically through
    :func:`repro.ckpt.atomic_write_bytes`), so an interrupted experiment
    continues at run *k* instead of run 0.  Runs are seeded purely by
    their index, which is what makes skipping completed runs sound: run
    *k* produces the same result whether or not runs ``0..k-1`` executed
    in this process.
    """

    def __init__(self, directory: Union[str, Path], name: str,
                 n_runs: int, base_seed: int):
        safe = "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in name)
        self.path = Path(directory) / f"experiment-{safe}.json"
        self.key = {"name": name, "n_runs": n_runs, "base_seed": base_seed}
        self.runs: List[Dict[str, object]] = []
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except json.JSONDecodeError:
                payload = None   # half-written by a dead process: restart
            if (payload
                    and payload.get("version") == _EXPERIMENT_STATE_VERSION
                    and payload.get("key") == self.key):
                self.runs = list(payload.get("runs", []))

    @property
    def completed(self) -> int:
        return len(self.runs)

    def record(self, run_index: int, metrics: Dict[str, float],
               train_seconds: float, test_seconds: float) -> None:
        from ..ckpt.checkpoint import atomic_write_bytes

        self.runs.append({"run_index": run_index,
                          "metrics": {k: float(v)
                                      for k, v in metrics.items()},
                          "train_seconds": float(train_seconds),
                          "test_seconds": float(test_seconds)})
        payload = {"version": _EXPERIMENT_STATE_VERSION, "key": self.key,
                   "runs": self.runs}
        atomic_write_bytes(self.path,
                           (json.dumps(payload, indent=2) + "\n")
                           .encode("utf-8"))


@dataclass
class ExperimentResult:
    """All runs of one model on one dataset."""

    name: str
    runs: List[Dict[str, float]]
    train_seconds: List[float]
    test_seconds: List[float]
    #: last run's raw result (TrainResult or PredictorResult — both expose
    #: ``predictions``, ``actuals`` and ``test_days``)
    last_result: Optional[object] = field(default=None, repr=False)

    def summary(self) -> Dict[str, RunSummary]:
        return summarize_runs(self.runs)

    def metric_values(self, metric: str) -> List[float]:
        return [run[metric] for run in self.runs]

    def mean(self, metric: str) -> float:
        return float(np.mean(self.metric_values(metric)))


def _run_protocol_loop(name: str, n_runs: int, base_seed: int,
                       resume_dir: Optional[Union[str, Path]],
                       one_run: Callable[[int], "tuple"]
                       ) -> ExperimentResult:
    """Shared 15-run loop with optional run-level resume.

    ``one_run(seed)`` executes a single seeded run and returns
    ``(metrics, result)``.  With ``resume_dir``, completed runs recorded
    by a previous (interrupted) invocation are loaded from the journal
    and skipped; seeds depend only on the run index, so the aggregate is
    identical to an uninterrupted experiment.
    """
    journal = (_ExperimentJournal(resume_dir, name, n_runs, base_seed)
               if resume_dir is not None else None)
    runs: List[Dict[str, float]] = []
    train_times: List[float] = []
    test_times: List[float] = []
    last = None
    start_index = 0
    if journal is not None and journal.completed:
        start_index = min(journal.completed, n_runs)
        for row in journal.runs[:start_index]:
            runs.append(dict(row["metrics"]))
            train_times.append(row["train_seconds"])
            test_times.append(row["test_seconds"])
    for run_index in range(start_index, n_runs):
        seed = base_seed * 1000 + run_index
        metrics, result = one_run(seed)
        runs.append(metrics)
        train_times.append(result.train_seconds)
        test_times.append(result.test_seconds)
        last = result
        if journal is not None:
            journal.record(run_index, metrics, result.train_seconds,
                           result.test_seconds)
    return ExperimentResult(name=name, runs=runs,
                            train_seconds=train_times,
                            test_seconds=test_times, last_result=last)


def run_experiment(name: str, factory: ModelFactory, dataset: StockDataset,
                   config: Optional[TrainConfig] = None, n_runs: int = 15,
                   base_seed: int = 0,
                   top_ns: Sequence[int] = (1, 5, 10),
                   resume_dir: Optional[Union[str, Path]] = None
                   ) -> ExperimentResult:
    """Train/evaluate a model ``n_runs`` times with independent seeds.

    ``resume_dir`` enables run-level fault tolerance: completed runs are
    journaled there, and a re-invocation after a crash continues at run
    *k* instead of run 0 (``last_result`` is ``None`` when every run was
    restored from the journal).
    """
    cfg = config if config is not None else TrainConfig()

    def one_run(seed: int):
        model = factory(fork_rng(seed))
        run_cfg = replace(cfg, seed=seed)
        result = Trainer(model, dataset, run_cfg).run()
        metrics = ranking_metrics(result.predictions, result.actuals,
                                  top_ns=top_ns)
        return metrics, result

    return _run_protocol_loop(name, n_runs, base_seed, resume_dir, one_run)


def run_named_experiment(name: str, dataset: StockDataset,
                         config: Optional[TrainConfig] = None,
                         n_runs: int = 15, base_seed: int = 0,
                         top_ns: Sequence[int] = (1, 5, 10),
                         resume_dir: Optional[Union[str, Path]] = None
                         ) -> ExperimentResult:
    """Run a registry model (Table IV name) for ``n_runs`` seeded repeats.

    Classification models (``can_rank=False``) report ``MRR = NaN``,
    rendering as '-' in the printed tables, exactly like the paper.
    ``resume_dir`` journals completed runs for run-level resume, as in
    :func:`run_experiment`.
    """
    from ..baselines.registry import get_spec, make_predictor

    spec = get_spec(name)
    cfg = spec.adapt_config(config if config is not None else TrainConfig())

    def one_run(seed: int):
        predictor = make_predictor(name, dataset, seed=seed)
        run_cfg = replace(cfg, seed=seed)
        result = predictor.fit_predict(dataset, run_cfg)
        metrics = ranking_metrics(result.predictions, result.actuals,
                                  top_ns=top_ns)
        if not spec.can_rank:
            metrics["MRR"] = float("nan")
        return metrics, result

    return _run_protocol_loop(name, n_runs, base_seed, resume_dir, one_run)


def compare_paired(ours: ExperimentResult, baseline: ExperimentResult,
                   metric: str) -> WilcoxonResult:
    """Table IV significance: paired Wilcoxon of per-run metric values."""
    return paired_wilcoxon(ours.metric_values(metric),
                           baseline.metric_values(metric),
                           alternative="greater")


def compare_to_published(ours: ExperimentResult, metric: str,
                         published_value: float) -> WilcoxonResult:
    """Table V significance: one-sample Wilcoxon vs a published number."""
    return one_sample_wilcoxon(ours.metric_values(metric), published_value,
                               alternative="greater")


def strongest_baseline(results: Dict[str, ExperimentResult],
                       metric: str) -> str:
    """Name of the baseline with the best mean on ``metric``."""
    if not results:
        raise ValueError("no baseline results supplied")
    return max(results, key=lambda name: results[name].mean(metric))
