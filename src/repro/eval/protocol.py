"""Multi-run experiment protocol (§V-B-4 and §V-C-1).

"To eliminate the randomness and have a statistically significant result,
we run all models fifteen times and average the performance."  This module
provides exactly that loop: a *model factory* is invoked once per run with
a fresh seeded generator, trained through the shared
:class:`~repro.core.trainer.Trainer`, scored with the ranking metrics, and
the per-run metric dicts are aggregated and compared with the Wilcoxon
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.trainer import TrainConfig, Trainer, TrainResult
from ..data import StockDataset
from ..nn.module import Module
from ..nn.random import fork_rng
from ..stats import (RunSummary, WilcoxonResult, one_sample_wilcoxon,
                     paired_wilcoxon, summarize_runs)
from .metrics import ranking_metrics

ModelFactory = Callable[[np.random.Generator], Module]


@dataclass
class ExperimentResult:
    """All runs of one model on one dataset."""

    name: str
    runs: List[Dict[str, float]]
    train_seconds: List[float]
    test_seconds: List[float]
    #: last run's raw result (TrainResult or PredictorResult — both expose
    #: ``predictions``, ``actuals`` and ``test_days``)
    last_result: Optional[object] = field(default=None, repr=False)

    def summary(self) -> Dict[str, RunSummary]:
        return summarize_runs(self.runs)

    def metric_values(self, metric: str) -> List[float]:
        return [run[metric] for run in self.runs]

    def mean(self, metric: str) -> float:
        return float(np.mean(self.metric_values(metric)))


def run_experiment(name: str, factory: ModelFactory, dataset: StockDataset,
                   config: Optional[TrainConfig] = None, n_runs: int = 15,
                   base_seed: int = 0,
                   top_ns: Sequence[int] = (1, 5, 10)) -> ExperimentResult:
    """Train/evaluate a model ``n_runs`` times with independent seeds."""
    cfg = config if config is not None else TrainConfig()
    runs: List[Dict[str, float]] = []
    train_times: List[float] = []
    test_times: List[float] = []
    last: Optional[TrainResult] = None
    for run_index in range(n_runs):
        stream = base_seed * 1000 + run_index
        model = factory(fork_rng(stream))
        run_cfg = replace(cfg, seed=stream)
        result = Trainer(model, dataset, run_cfg).run()
        runs.append(ranking_metrics(result.predictions, result.actuals,
                                    top_ns=top_ns))
        train_times.append(result.train_seconds)
        test_times.append(result.test_seconds)
        last = result
    return ExperimentResult(name=name, runs=runs,
                            train_seconds=train_times,
                            test_seconds=test_times, last_result=last)


def run_named_experiment(name: str, dataset: StockDataset,
                         config: Optional[TrainConfig] = None,
                         n_runs: int = 15, base_seed: int = 0,
                         top_ns: Sequence[int] = (1, 5, 10)
                         ) -> ExperimentResult:
    """Run a registry model (Table IV name) for ``n_runs`` seeded repeats.

    Classification models (``can_rank=False``) report ``MRR = NaN``,
    rendering as '-' in the printed tables, exactly like the paper.
    """
    from ..baselines.registry import get_spec, make_predictor

    spec = get_spec(name)
    cfg = spec.adapt_config(config if config is not None else TrainConfig())
    runs: List[Dict[str, float]] = []
    train_times: List[float] = []
    test_times: List[float] = []
    last = None
    for run_index in range(n_runs):
        seed = base_seed * 1000 + run_index
        predictor = make_predictor(name, dataset, seed=seed)
        run_cfg = replace(cfg, seed=seed)
        result = predictor.fit_predict(dataset, run_cfg)
        metrics = ranking_metrics(result.predictions, result.actuals,
                                  top_ns=top_ns)
        if not spec.can_rank:
            metrics["MRR"] = float("nan")
        runs.append(metrics)
        train_times.append(result.train_seconds)
        test_times.append(result.test_seconds)
        last = result
    return ExperimentResult(name=name, runs=runs,
                            train_seconds=train_times,
                            test_seconds=test_times, last_result=last)


def compare_paired(ours: ExperimentResult, baseline: ExperimentResult,
                   metric: str) -> WilcoxonResult:
    """Table IV significance: paired Wilcoxon of per-run metric values."""
    return paired_wilcoxon(ours.metric_values(metric),
                           baseline.metric_values(metric),
                           alternative="greater")


def compare_to_published(ours: ExperimentResult, metric: str,
                         published_value: float) -> WilcoxonResult:
    """Table V significance: one-sample Wilcoxon vs a published number."""
    return one_sample_wilcoxon(ours.metric_values(metric), published_value,
                               alternative="greater")


def strongest_baseline(results: Dict[str, ExperimentResult],
                       metric: str) -> str:
    """Name of the baseline with the best mean on ``metric``."""
    if not results:
        raise ValueError("no baseline results supplied")
    return max(results, key=lambda name: results[name].mean(metric))
