"""Grid search over training hyperparameters (paper §V-B-4).

"The same tuning strategy and grid search are employed to select the
optimal hyperparameters on all graph-based methods" — the paper tunes the
window size T over {5, 10, 15, 20} and α over {0.01, 0.1, 0.2}.  This
module provides that loop for any registry model or module factory, with
the selection done on a *validation* tail of the training period so the
test period stays untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.trainer import TrainConfig, Trainer
from ..data import StockDataset
from ..nn.module import Module
from ..nn.random import fork_rng
from .metrics import ranking_metrics

#: the paper's §V-B-4 grids
PAPER_WINDOW_GRID = (5, 10, 15, 20)
PAPER_ALPHA_GRID = (0.01, 0.1, 0.2)


@dataclass
class GridPoint:
    """One evaluated hyperparameter combination."""

    params: Dict[str, object]
    metrics: Dict[str, float]
    score: float


@dataclass
class GridSearchResult:
    """All evaluated points, sorted best-first."""

    points: List[GridPoint]
    metric: str

    @property
    def best(self) -> GridPoint:
        return self.points[0]

    def best_config(self, base: Optional[TrainConfig] = None) -> TrainConfig:
        """The base config with the winning parameters substituted in."""
        config = base if base is not None else TrainConfig()
        return replace(config, **self.best.params)

    def table(self) -> List[Dict[str, object]]:
        return [{**p.params, "score": p.score} for p in self.points]


def validation_split(dataset: StockDataset, window: int,
                     validation_days: int) -> tuple:
    """Carve a validation tail off the training period.

    Returns ``(train_days, validation_days_list)``; the dataset's real test
    period is never touched.
    """
    train_days, _ = dataset.split(window)
    if validation_days >= len(train_days):
        raise ValueError(f"validation_days={validation_days} exhausts the "
                         f"{len(train_days)}-day training period")
    return train_days[:-validation_days], train_days[-validation_days:]


def _grid_fingerprint(base: TrainConfig, param_grid: Dict[str, Sequence],
                      metric: str, validation_days: int, seed: int,
                      market: str) -> str:
    """Natural key for one grid search in the experiment store.

    Digests everything that determines the evaluated scores: the base
    config, the full grid (so point indices are stable), the selection
    metric, the validation split, the seed, and the market.
    """
    import hashlib
    import json
    from dataclasses import asdict

    payload = {"config": asdict(base),
               "grid": {name: [repr(v) for v in param_grid[name]]
                        for name in sorted(param_grid)},
               "metric": metric, "validation_days": validation_days,
               "seed": seed, "market": market}
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()
    return f"grid-{digest[:16]}"


def grid_search(factory: Callable[[np.random.Generator, TrainConfig], Module],
                dataset: StockDataset,
                param_grid: Dict[str, Sequence],
                base_config: Optional[TrainConfig] = None,
                metric: str = "IRR-5",
                validation_days: int = 30,
                seed: int = 0,
                workers: int = 1,
                store: Optional[object] = None,
                dedup: bool = True) -> GridSearchResult:
    """Exhaustive search over ``param_grid`` scored on a validation tail.

    Parameters
    ----------
    factory:
        ``factory(rng, config)`` builds a fresh scoring model; it receives
        the candidate config so models can depend on e.g.
        ``config.num_features``.
    param_grid:
        Mapping of :class:`TrainConfig` field names to candidate values,
        e.g. ``{"window": PAPER_WINDOW_GRID, "alpha": PAPER_ALPHA_GRID}``.
    metric:
        Ranking metric to maximize on the validation tail.
    validation_days:
        Length of the training tail held out for selection.
    workers:
        Fan the grid points out across this many forked worker processes
        (:class:`repro.parallel.ExperimentPool`).  Each point is seeded
        purely by its combination index, so the evaluated scores — and
        therefore the selected configuration — are bitwise-identical to
        the serial search.
    store:
        An :class:`~repro.store.ExperimentStore` (or path) that records
        every evaluated point (``kind='grid'``).  With ``dedup=True`` a
        re-run restores already-stored points instead of retraining
        them; the restored scores are bitwise-equal (sqlite REAL is the
        same IEEE-754 double).
    """
    if not param_grid:
        raise ValueError("param_grid must contain at least one parameter")
    base = base_config if base_config is not None else TrainConfig()
    names = list(param_grid)
    combos = list(product(*(param_grid[n] for n in names)))

    def evaluate_combo(combo_index: int) -> GridPoint:
        params = dict(zip(names, combos[combo_index]))
        config = replace(base, **params)
        train_days, valid_days = validation_split(dataset, config.window,
                                                  validation_days)
        run_config = replace(config, seed=seed)
        model = factory(fork_rng(seed * 10000 + combo_index), run_config)
        trainer = Trainer(model, dataset, run_config,
                          train_days=train_days)
        trainer.train()
        predictions = trainer.predict(valid_days)
        actuals = np.stack([dataset.label(day) for day in valid_days])
        metrics = ranking_metrics(predictions, actuals)
        return GridPoint(params=params, metrics=metrics,
                         score=metrics[metric])

    store_sink = None
    fingerprint = None
    experiment = f"grid@{dataset.market}"
    restored: Dict[int, GridPoint] = {}
    if store is not None:
        from ..store import StoreSink

        store_sink = StoreSink(store)
        fingerprint = _grid_fingerprint(base, param_grid, metric,
                                        validation_days, seed,
                                        dataset.market)
        if dedup:
            for index, run in store_sink.store.completed_runs(
                    fingerprint, experiment).items():
                if 0 <= index < len(combos) and metric in run.metrics:
                    restored[index] = GridPoint(
                        params=dict(zip(names, combos[index])),
                        metrics=dict(run.metrics),
                        score=run.metrics[metric])

    pending = [i for i in range(len(combos)) if i not in restored]
    evaluated: Dict[int, GridPoint] = {}
    if pending:
        if workers > 1 and len(pending) > 1:
            from ..parallel import ExperimentPool, fork_available
            if fork_available():
                pool = ExperimentPool(min(workers, len(pending)),
                                      lambda task: evaluate_combo(
                                          pending[task]))
                outcome = pool.run(list(range(len(pending))))
                evaluated = {pending[i]: outcome[i]
                             for i in range(len(pending))}
            else:
                evaluated = {i: evaluate_combo(i) for i in pending}
        else:
            evaluated = {i: evaluate_combo(i) for i in pending}

    if store_sink is not None:
        from ..store import RunRecord

        for index, point in evaluated.items():
            store_sink.write_run(RunRecord(
                experiment=experiment, run_index=index,
                metrics=dict(point.metrics),
                train_seconds=float("nan"), test_seconds=float("nan"),
                fingerprint=fingerprint, seed=seed * 10000 + index,
                kind="grid",
                config={**{name: repr(value) for name, value
                           in point.params.items()},
                        "metric": metric,
                        "validation_days": validation_days},
                n_runs=len(combos), base_seed=seed))

    points = [restored.get(i) or evaluated[i] for i in range(len(combos))]
    points.sort(key=lambda p: -p.score)
    return GridSearchResult(points=points, metric=metric)
