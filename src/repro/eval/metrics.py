"""Ranking metrics of the evaluation protocol (§V-B-3).

- **MRR** — mean reciprocal rank: for each testing day, where does the
  model's top-1 pick sit in the *true* return ordering?  Averaged over
  days.
- **IRR-N** — cumulative investment return ratio of the daily buy-sell
  strategy: each day buy the top-``N`` scored stocks (equal weight), sell
  the next day; sum the daily portfolio returns over the test period.

Higher is better for both.  Inputs are matrices over the test period:
``predictions[d, i]`` = model score of stock ``i`` on day ``d``;
``actuals[d, i]`` = realized next-day return ratio.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def _validate(predictions: np.ndarray, actuals: np.ndarray) -> tuple:
    predictions = np.asarray(predictions, dtype=np.float64)
    actuals = np.asarray(actuals, dtype=np.float64)
    if predictions.ndim == 1:
        predictions = predictions[None, :]
        actuals = actuals[None, :]
    if predictions.shape != actuals.shape:
        raise ValueError(f"shape mismatch: predictions {predictions.shape} "
                         f"vs actuals {actuals.shape}")
    if predictions.ndim != 2:
        raise ValueError("expected (days, stocks) matrices")
    return predictions, actuals


def reciprocal_rank_of_top1(scores: np.ndarray,
                            returns: np.ndarray) -> float:
    """1 / (true-rank of the predicted top-1 stock) for one day."""
    top = int(np.argmax(scores))
    # Rank 1 = highest true return; ties broken pessimistically (a tied
    # stock counts at the bottom of its tie group) so the metric never
    # benefits from degenerate constant predictions.
    rank = int((returns > returns[top]).sum() + (returns == returns[top]).sum())
    return 1.0 / rank


def mrr(predictions: np.ndarray, actuals: np.ndarray) -> float:
    """Mean reciprocal rank of the daily top-1 pick over the test period."""
    predictions, actuals = _validate(predictions, actuals)
    daily = [reciprocal_rank_of_top1(p, a)
             for p, a in zip(predictions, actuals)]
    return float(np.mean(daily))


def daily_topn_returns(predictions: np.ndarray, actuals: np.ndarray,
                       top_n: int) -> np.ndarray:
    """Equal-weight daily return of the top-``N`` picks: ``(days,)``."""
    predictions, actuals = _validate(predictions, actuals)
    num_stocks = predictions.shape[1]
    if not 1 <= top_n <= num_stocks:
        raise ValueError(f"top_n must be in 1..{num_stocks}, got {top_n}")
    # argpartition keeps it O(N) per day.
    picks = np.argpartition(-predictions, top_n - 1, axis=1)[:, :top_n]
    chosen = np.take_along_axis(actuals, picks, axis=1)
    return chosen.mean(axis=1)


def irr(predictions: np.ndarray, actuals: np.ndarray, top_n: int) -> float:
    """Cumulative investment return ratio (IRR-N) over the test period."""
    return float(daily_topn_returns(predictions, actuals, top_n).sum())


def irr_curve(predictions: np.ndarray, actuals: np.ndarray,
              top_n: int) -> np.ndarray:
    """Cumulative IRR series over testing days (Figure 6's y-axis)."""
    return np.cumsum(daily_topn_returns(predictions, actuals, top_n))


def precision_at_n(predictions: np.ndarray, actuals: np.ndarray,
                   top_n: int) -> float:
    """Fraction of daily top-``N`` picks inside the true top-``N`` set."""
    predictions, actuals = _validate(predictions, actuals)
    num_stocks = predictions.shape[1]
    if not 1 <= top_n <= num_stocks:
        raise ValueError(f"top_n must be in 1..{num_stocks}, got {top_n}")
    pred_picks = np.argpartition(-predictions, top_n - 1, axis=1)[:, :top_n]
    true_picks = np.argpartition(-actuals, top_n - 1, axis=1)[:, :top_n]
    hits = [len(set(p) & set(t)) for p, t in zip(pred_picks, true_picks)]
    return float(np.mean(hits) / top_n)


def ndcg_at_n(predictions: np.ndarray, actuals: np.ndarray,
              top_n: int) -> float:
    """Normalized discounted cumulative gain over the daily rankings.

    Gains are the (shifted-positive) next-day returns; a model that puts
    high-return stocks near the top of its list scores close to 1.  Not in
    the paper's metric set, but standard for learning-to-rank evaluation
    and useful to disambiguate IRR ties.
    """
    predictions, actuals = _validate(predictions, actuals)
    num_stocks = predictions.shape[1]
    if not 1 <= top_n <= num_stocks:
        raise ValueError(f"top_n must be in 1..{num_stocks}, got {top_n}")
    discounts = 1.0 / np.log2(np.arange(2, top_n + 2))
    scores = []
    for day_pred, day_act in zip(predictions, actuals):
        gains = day_act - day_act.min()        # shift to non-negative
        order = np.argsort(-day_pred)[:top_n]
        ideal = np.sort(gains)[::-1][:top_n]
        dcg = float((gains[order] * discounts).sum())
        idcg = float((ideal * discounts).sum())
        scores.append(dcg / idcg if idcg > 0 else 1.0)
    return float(np.mean(scores))


def kendall_tau(predictions: np.ndarray, actuals: np.ndarray) -> float:
    """Mean daily Kendall rank correlation between scores and returns.

    Computed pairwise in O(N²) per day (fine at evaluation scale); 1 means
    the full predicted order matches the realized order.
    """
    predictions, actuals = _validate(predictions, actuals)
    taus = []
    for day_pred, day_act in zip(predictions, actuals):
        pred_diff = np.sign(day_pred[:, None] - day_pred[None, :])
        act_diff = np.sign(day_act[:, None] - day_act[None, :])
        upper = np.triu_indices(len(day_pred), k=1)
        concordance = pred_diff[upper] * act_diff[upper]
        valid = concordance != 0
        if valid.sum() == 0:
            taus.append(0.0)
        else:
            taus.append(float(concordance[valid].mean()))
    return float(np.mean(taus))


def ranking_metrics(predictions: np.ndarray, actuals: np.ndarray,
                    top_ns: Sequence[int] = (1, 5, 10)) -> Dict[str, float]:
    """The paper's metric row: MRR plus IRR-1/5/10."""
    result = {"MRR": mrr(predictions, actuals)}
    for n in top_ns:
        result[f"IRR-{n}"] = irr(predictions, actuals, n)
    return result
