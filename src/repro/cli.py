"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
markets
    List the available market presets with their statistics.
models
    List the registered comparison models (Table IV names).
train
    Train one model on one market, print metrics, optionally checkpoint.
compare
    Run several models under the shared protocol and print a Table-IV
    style comparison.

Examples
--------
    python -m repro.cli markets
    python -m repro.cli train --market nasdaq-mini --model "RT-GCN (T)" \
        --epochs 8 --checkpoint /tmp/rtgcn.npz
    python -m repro.cli compare --market csi-mini \
        --models "Rank_LSTM,RSR_E,RT-GCN (T)" --runs 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .baselines import available_baselines, get_spec, make_predictor
from .core import TrainConfig
from .data import MARKET_SPECS, available_markets, load_market
from .eval import ranking_metrics, run_named_experiment


def _config_from_args(args: argparse.Namespace) -> TrainConfig:
    return TrainConfig(window=args.window, num_features=args.features,
                       alpha=args.alpha, epochs=args.epochs,
                       seed=args.seed)


def _add_train_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--market", default="nasdaq-mini",
                        help="market preset (see `markets`)")
    parser.add_argument("--window", type=int, default=10,
                        help="input window T")
    parser.add_argument("--features", type=int, default=4,
                        help="feature count D (1..4, Table VIII)")
    parser.add_argument("--alpha", type=float, default=0.1,
                        help="ranking-loss balance (Eq. 9)")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)


def cmd_markets(_: argparse.Namespace) -> int:
    print(f"{'preset':14s} {'stocks':>6s} {'industries':>10s} "
          f"{'wiki types':>10s} {'train':>6s} {'test':>5s}")
    for name in available_markets():
        spec = MARKET_SPECS[name]
        wiki = str(spec.wiki_types) if spec.wiki_types else "-"
        print(f"{name:14s} {spec.num_stocks:6d} {spec.num_industries:10d} "
              f"{wiki:>10s} {spec.train_days:6d} {spec.test_days:5d}")
    return 0


def cmd_models(_: argparse.Namespace) -> int:
    print(f"{'model':12s} {'category':8s} {'ranks?':6s} {'relations?':10s}")
    for name in available_baselines():
        spec = get_spec(name)
        print(f"{name:12s} {spec.category:8s} "
              f"{'yes' if spec.can_rank else 'no':6s} "
              f"{'yes' if spec.uses_relations else 'no':10s}")
    return 0


_STRATEGY_OF = {"RT-GCN (U)": "uniform", "RT-GCN (W)": "weight",
                "RT-GCN (T)": "time"}


def cmd_train(args: argparse.Namespace) -> int:
    dataset = load_market(args.market, seed=args.seed)
    print(f"dataset: {dataset}")
    config = get_spec(args.model).adapt_config(_config_from_args(args))
    print(f"training {args.model} "
          f"({config.epochs} epochs, window {config.window}) ...")

    model = None
    if args.model in _STRATEGY_OF:
        # Build the RT-GCN directly so it can be checkpointed after the run.
        from .core import RTGCN, Trainer
        model = RTGCN(dataset.relations, num_features=config.num_features,
                      strategy=_STRATEGY_OF[args.model],
                      rng=np.random.default_rng(args.seed))
        result = Trainer(model, dataset, config).run()
    else:
        if args.checkpoint:
            raise SystemExit("--checkpoint is only supported for the "
                             "RT-GCN strategies")
        predictor = make_predictor(args.model, dataset, seed=args.seed)
        result = predictor.fit_predict(dataset, config)

    metrics = ranking_metrics(result.predictions, result.actuals)
    if not get_spec(args.model).can_rank:
        metrics["MRR"] = float("nan")
    print(f"train {result.train_seconds:.1f}s, "
          f"test {result.test_seconds:.2f}s")
    for key, value in metrics.items():
        rendered = "-" if np.isnan(value) else f"{value:+.4f}"
        print(f"  {key:7s} {rendered}")

    if args.checkpoint and model is not None:
        from .io import save_checkpoint
        path = save_checkpoint(
            model, args.checkpoint,
            metadata={"market": args.market,
                      "metrics": {k: float(v) for k, v in metrics.items()
                                  if not np.isnan(v)}})
        print(f"checkpoint written to {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    dataset = load_market(args.market, seed=args.seed)
    print(f"dataset: {dataset}")
    names = [n.strip() for n in args.models.split(",") if n.strip()]
    config = _config_from_args(args)
    print(f"{'model':12s} {'MRR':>8s} {'IRR-1':>8s} {'IRR-5':>8s} "
          f"{'IRR-10':>8s}")
    for name in names:
        result = run_named_experiment(name, dataset, config,
                                      n_runs=args.runs,
                                      base_seed=args.seed)
        summary = result.summary()
        cells = []
        for key in ("MRR", "IRR-1", "IRR-5", "IRR-10"):
            mean = summary[key].mean
            cells.append("-" if np.isnan(mean) else f"{mean:+.3f}")
        print(f"{name:12s} " + " ".join(f"{c:>8s}" for c in cells))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RT-GCN reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("markets", help="list market presets")
    sub.add_parser("models", help="list comparison models")

    train = sub.add_parser("train", help="train one model on one market")
    _add_train_options(train)
    train.add_argument("--model", default="RT-GCN (T)",
                       help="model name (see `models`)")
    train.add_argument("--checkpoint", default=None,
                       help="write an RT-GCN (T) checkpoint here")

    compare = sub.add_parser("compare", help="compare several models")
    _add_train_options(compare)
    compare.add_argument("--models",
                         default="Rank_LSTM,RSR_E,RT-GCN (T)",
                         help="comma-separated model names")
    compare.add_argument("--runs", type=int, default=3,
                         help="repeated runs per model")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "markets": cmd_markets,
        "models": cmd_models,
        "train": cmd_train,
        "compare": cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
