"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
markets
    List the available market presets with their statistics.
models
    List the registered comparison models (Table IV names).
train
    Train one model on one market, print metrics, optionally checkpoint.
compare
    Run several models under the shared protocol and print a Table-IV
    style comparison.
sweep
    Fan a model × market × seed sweep across worker processes with
    results bitwise-identical to the serial loop (see
    ``docs/parallelism.md``).
profile
    Train briefly under the op profiler and print per-op / per-phase
    cost tables, writing a JSON report (see ``docs/observability.md``).
serve
    Serve trained checkpoints over HTTP — threaded micro-batched
    inference or, with ``--mode cluster``, an asyncio front-end over
    forked shared-memory workers with admission control and hot reload
    (see ``docs/serving.md``).
query
    Query a running ``serve`` instance and print the JSON response;
    a comma-separated ``--endpoint`` list fans the reads out
    concurrently.
stream
    Replay a scripted streaming scenario (``repro.data.stream``)
    against a running server via ``POST /v1/ingest`` — day by day:
    relation edge churn, listings/delistings, regime switches — and
    report tick latency and fallback counts (see ``docs/streaming.md``).
db
    Query, export, summarize, or migrate into the sqlite experiment
    store (see ``docs/experiment-store.md``): ``db query``,
    ``db export``, ``db report``, ``db migrate`` — all with a
    consistent ``--format {table,json,csv}``.

``train``, ``compare``, and ``sweep`` accept ``--store PATH`` to record
every run (per-epoch losses included) in the experiment store;
``compare``/``sweep`` add ``--no-dedup`` to force re-execution of runs
the store already holds.

Every field of :class:`repro.core.TrainConfig` is exposed as a flag on the
training commands (``--learning-rate``, ``--weight-decay``, ...); the flag
set is generated from the dataclass so new hyperparameters appear here
automatically.  ``serve`` works the same way against
:class:`repro.serve.ServeConfig` (``--mode``, ``--slo-p99-ms``,
``--cluster-workers``, ...).

The ``train`` command is fault-tolerant: ``--checkpoint-dir`` writes
atomic, checksummed training checkpoints (optionally every N batches via
``--checkpoint-every``) and ``--resume`` continues a killed run
bitwise-identically; ``compare`` accepts ``--resume-dir`` to continue a
multi-run comparison at run *k*.  See ``docs/checkpointing.md``.

Examples
--------
    python -m repro.cli markets
    python -m repro.cli train --market nasdaq-mini --model "RT-GCN (T)" \
        --epochs 8 --checkpoint /tmp/rtgcn.npz
    python -m repro.cli train --market nasdaq-mini --model "RT-GCN (T)" \
        --checkpoint-dir /tmp/ckpts --checkpoint-every 20
    python -m repro.cli train --market nasdaq-mini --model "RT-GCN (T)" \
        --checkpoint-dir /tmp/ckpts --resume
    python -m repro.cli compare --market csi-mini \
        --models "Rank_LSTM,RSR_E,RT-GCN (T)" --runs 3
    python -m repro.cli sweep --markets nasdaq-mini,csi-mini \
        --models "Rank_LSTM,RT-GCN (T)" --runs 3 --workers 4
    python -m repro.cli profile --market nasdaq-mini --model "RT-GCN (T)"
    python -m repro.cli serve --checkpoint-dir /tmp/ckpts --port 8151
    python -m repro.cli serve --checkpoint-dir /tmp/ckpts --mode cluster \
        --cluster-workers 2 --slo-p99-ms 50
    python -m repro.cli query --top-k 10 --port 8151
    python -m repro.cli query --endpoint scores,top_k,stats --port 8151
    python -m repro.cli stream --scenario smoke --port 8151 \
        --store experiments.sqlite
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .baselines import (available_baselines, get_spec, make_predictor,
                        rtgcn_strategies)
from .core import TrainConfig
from .serve.config import ServeConfig
from .data import MARKET_SPECS, SCENARIOS, available_markets, load_market
from .eval import ranking_metrics, run_named_experiment

#: CLI defaults that intentionally differ from the TrainConfig defaults
#: (quick runs suit the command line; the dataclass keeps paper values).
_CLI_DEFAULTS = {"window": 10, "epochs": 8}

#: flag spellings that differ from the mechanical --field-name form
_FIELD_FLAGS = {"num_features": ("--features", "--num-features")}

#: element type for Optional[...] fields (dataclass annotations are
#: strings under ``from __future__ import annotations``)
_OPTIONAL_TYPES = {"max_train_days": int, "early_stopping_patience": int}

_FIELD_HELP = {
    "window": "input window T",
    "num_features": "feature count D (1..4, Table VIII)",
    "alpha": "ranking-loss balance (Eq. 9)",
    "weight_decay": "L2 penalty coefficient (λ of Eq. 9)",
    "learning_rate": "Adam learning rate",
    "epochs": "training epochs",
    "grad_clip": "max gradient norm (0 disables clipping)",
    "shuffle": "shuffle training days each epoch",
    "seed": "RNG seed for shuffling and model init",
    "max_train_days": "subsample the training period to its last N days",
    "early_stopping_patience": "stop after N epochs without val improvement",
    "validation_days": "held-out tail length for early stopping",
    "graph_mode": "graph propagation backend: auto | dense | sparse "
                  "(see docs/performance.md)",
    "nan_policy": "on NaN/Inf loss: raise | ignore | rollback "
                  "(rollback needs --checkpoint-dir)",
    "max_rollbacks": "NaN-guard rollback budget before giving up",
    "dtype_policy": "numeric policy: float64 | float32 | mixed "
                    "(fp32 storage, fp64 accumulation; "
                    "see docs/performance.md)",
    "fused_kernels": "use the fused autograd kernels",
    "buffer_arena": "recycle backward buffers through the arena",
    "dist_workers": "intra-run data-parallel workers: 0 = plain serial "
                    "trainer, 1 = inline dist reference, N = forked "
                    "workers, negative = one per CPU core; the numbers "
                    "never depend on N (docs/distributed.md)",
    "dist_days_per_step": "training days combined into one optimizer "
                          "step by the dist loop (part of the numerics, "
                          "never derived from the worker count)",
}


def _add_train_options(parser: argparse.ArgumentParser,
                       include_market: bool = True) -> None:
    """Add ``--market`` plus one flag per :class:`TrainConfig` field."""
    if include_market:
        parser.add_argument("--market", default="nasdaq-mini",
                            help="market preset (see `markets`)")
    for spec in dataclasses.fields(TrainConfig):
        flags = _FIELD_FLAGS.get(spec.name,
                                 ("--" + spec.name.replace("_", "-"),))
        default = _CLI_DEFAULTS.get(spec.name, spec.default)
        help_text = _FIELD_HELP.get(spec.name, spec.name)
        if isinstance(spec.default, bool):
            parser.add_argument(*flags, dest=spec.name,
                                action=argparse.BooleanOptionalAction,
                                default=default, help=help_text)
        else:
            arg_type = (_OPTIONAL_TYPES.get(spec.name)
                        or type(spec.default))
            parser.add_argument(*flags, dest=spec.name, type=arg_type,
                                default=default,
                                help=f"{help_text} (default: {default})")


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    """``--store`` / ``--no-dedup``, shared by compare and sweep."""
    parser.add_argument("--store", default=None, metavar="DB",
                        help="record every run in this sqlite experiment "
                             "store and skip runs it already holds "
                             "(docs/experiment-store.md)")
    parser.add_argument("--no-dedup", action="store_true",
                        help="with --store: re-execute runs even when "
                             "the store already holds them")


def _config_from_args(args: argparse.Namespace) -> TrainConfig:
    """Build a TrainConfig from the generated flags — every field, not a
    hand-copied subset."""
    return TrainConfig(**{spec.name: getattr(args, spec.name)
                          for spec in dataclasses.fields(TrainConfig)})


#: serve flag spellings that differ from the mechanical --field-name form
#: (the first spelling is the historical flag, kept working)
_SERVE_FIELD_FLAGS = {
    "batch_workers": ("--workers", "--batch-workers"),
    "default_timeout": ("--timeout", "--default-timeout"),
    "mode": ("--mode", "--serve-mode"),
}

#: argument type for Optional[...] ServeConfig fields
_SERVE_OPTIONAL_TYPES = {
    "model": str, "market": str, "seed": int, "memory_budget_mb": float,
    "straggler_poll_ms": float, "idle_poll_ms": float,
    "slo_p99_ms": float, "store": str,
}

_SERVE_FIELD_HELP = {
    "checkpoint_dir": "directory of checkpoint archives to serve",
    "model": "model name override for archives whose metadata does not "
             "record it",
    "market": "market override for archives whose metadata does not "
              "record it",
    "seed": "dataset regeneration seed override",
    "memory_budget_mb": "LRU-evict loaded models past this many MB of "
                        "parameters",
    "host": "bind address",
    "port": "bind port (0 = ephemeral)",
    "mode": "serving topology: threaded | cluster (docs/serving.md)",
    "cluster_workers": "forked inference workers (cluster mode)",
    "crash_retries": "per-request worker respawn+retry budget",
    "max_batch": "micro-batch size cap",
    "max_wait_ms": "micro-batch coalescing window (0 = unbatched)",
    "straggler_poll_ms": "in-window wait per extra request (default: "
                         "max-wait/8)",
    "idle_poll_ms": "idle worker stop-flag poll (shutdown latency only)",
    "batch_workers": "batcher worker threads",
    "default_timeout": "per-request deadline in seconds",
    "max_queue": "cluster admission bound; overflow answers 429",
    "retry_after_s": "Retry-After hint sent with 429/503",
    "slo_p99_ms": "p99 latency budget; evaluated in telemetry and "
                  "recorded in the store's slo table",
    "watch_interval_s": "checkpoint-dir poll interval for hot reload "
                        "(cluster mode)",
    "tick_budget_ms": "streaming ingest tick budget; overrun serves the "
                      "last ranking instead (docs/streaming.md)",
    "stream_alpha": "graph-smoothing weight of the streaming re-rank "
                    "(0 = model scores only, 1 = neighbors only)",
    "store": "record serving telemetry + SLO row in this sqlite "
             "experiment store on shutdown",
}


def _add_serve_options(parser: argparse.ArgumentParser) -> None:
    """One flag per :class:`ServeConfig` field, generated mechanically."""
    for spec in dataclasses.fields(ServeConfig):
        flags = _SERVE_FIELD_FLAGS.get(
            spec.name, ("--" + spec.name.replace("_", "-"),))
        help_text = _SERVE_FIELD_HELP.get(spec.name, spec.name)
        if spec.name == "checkpoint_dir":
            parser.add_argument(*flags, dest=spec.name, required=True,
                                help=help_text)
        elif isinstance(spec.default, bool):
            parser.add_argument(*flags, dest=spec.name,
                                action=argparse.BooleanOptionalAction,
                                default=spec.default, help=help_text)
        else:
            arg_type = (_SERVE_OPTIONAL_TYPES.get(spec.name)
                        or type(spec.default))
            parser.add_argument(*flags, dest=spec.name, type=arg_type,
                                default=spec.default,
                                help=f"{help_text} "
                                     f"(default: {spec.default})")


def _serve_config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Build a ServeConfig from the generated flags — every field."""
    return ServeConfig(**{spec.name: getattr(args, spec.name)
                          for spec in dataclasses.fields(ServeConfig)})


def cmd_markets(_: argparse.Namespace) -> int:
    print(f"{'preset':14s} {'stocks':>6s} {'industries':>10s} "
          f"{'wiki types':>10s} {'train':>6s} {'test':>5s}")
    for name in available_markets():
        spec = MARKET_SPECS[name]
        wiki = str(spec.wiki_types) if spec.wiki_types else "-"
        print(f"{name:14s} {spec.num_stocks:6d} {spec.num_industries:10d} "
              f"{wiki:>10s} {spec.train_days:6d} {spec.test_days:5d}")
    return 0


def cmd_models(_: argparse.Namespace) -> int:
    print(f"{'model':12s} {'category':8s} {'ranks?':6s} {'relations?':10s} "
          f"{'strategy':8s}")
    for name in available_baselines():
        spec = get_spec(name)
        print(f"{name:12s} {spec.category:8s} "
              f"{'yes' if spec.can_rank else 'no':6s} "
              f"{'yes' if spec.uses_relations else 'no':10s} "
              f"{spec.strategy or '-':8s}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = load_market(args.market, seed=args.seed)
    print(f"dataset: {dataset}")
    config = get_spec(args.model).adapt_config(_config_from_args(args))
    print(f"training {args.model} "
          f"({config.epochs} epochs, window {config.window}) ...")

    store_cb = None
    if args.store:
        from .store import StoreCallback
        store_cb = StoreCallback(
            args.store, f"{args.model}@{args.market}", seed=args.seed,
            config=dataclasses.asdict(config))

    wants_trainer = bool(args.checkpoint or args.checkpoint_dir
                         or args.resume or args.crash_after)
    model = None
    trainer = None
    strategies = rtgcn_strategies()        # registry-driven, never a table
    if args.model in strategies:
        # Build the RT-GCN directly so it can be checkpointed/resumed.
        from .core import RTGCN, Trainer
        model = RTGCN(dataset.relations, num_features=config.num_features,
                      strategy=strategies[args.model],
                      rng=np.random.default_rng(args.seed))
        trainer = Trainer(model, dataset, config)
        callbacks = []
        resume_from = None
        if store_cb is not None:
            callbacks.append(store_cb)
        if args.checkpoint_dir:
            from .ckpt import CheckpointCallback
            callbacks.append(CheckpointCallback(
                args.checkpoint_dir,
                every_n_batches=args.checkpoint_every,
                keep_last=args.keep_last,
                metadata={"model": args.model, "market": args.market},
                recorder=(store_cb.record_checkpoint
                          if store_cb is not None else None)))
            if args.resume:
                resume_from = args.checkpoint_dir
        elif args.resume:
            raise SystemExit("--resume requires --checkpoint-dir")
        if args.crash_after:
            # Fault injection for the CI round-trip job: die mid-run the
            # way SIGKILL would (exit code repro.ckpt.CRASH_EXIT_CODE).
            from .ckpt import CrashAfterBatches
            callbacks.append(CrashAfterBatches(args.crash_after,
                                               hard=True))
        result = trainer.run(callbacks=callbacks, resume_from=resume_from)
    else:
        if wants_trainer:
            raise SystemExit("--checkpoint/--checkpoint-dir/--resume/"
                             "--crash-after are only supported for the "
                             "RT-GCN strategies")
        predictor = make_predictor(args.model, dataset, seed=args.seed)
        result = predictor.fit_predict(dataset, config)

    metrics = ranking_metrics(result.predictions, result.actuals)
    if not get_spec(args.model).can_rank:
        metrics["MRR"] = float("nan")
    print(f"train {result.train_seconds:.1f}s, "
          f"test {result.test_seconds:.2f}s")
    for key, value in metrics.items():
        rendered = "-" if np.isnan(value) else f"{value:+.4f}"
        print(f"  {key:7s} {rendered}")
    if store_cb is not None:
        store_cb.finalize(metrics, result.train_seconds,
                          result.test_seconds)
        print(f"run recorded in {store_cb.store.path} "
              f"(fingerprint {store_cb.fingerprint})")

    if args.checkpoint and trainer is not None:
        from .ckpt import save as save_ckpt
        checkpoint = trainer.state_dict()
        checkpoint.metadata = {
            "model": args.model,
            "market": args.market,
            "metrics": {k: float(v) for k, v in metrics.items()
                        if not np.isnan(v)}}
        path = save_ckpt(checkpoint, args.checkpoint)
        print(f"checkpoint written to {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    dataset = load_market(args.market, seed=args.seed)
    print(f"dataset: {dataset}")
    names = [n.strip() for n in args.models.split(",") if n.strip()]
    config = _config_from_args(args)
    print(f"{'model':12s} {'MRR':>8s} {'IRR-1':>8s} {'IRR-5':>8s} "
          f"{'IRR-10':>8s}")
    for name in names:
        result = run_named_experiment(name, dataset, config,
                                      n_runs=args.runs,
                                      base_seed=args.seed,
                                      resume_dir=args.resume_dir,
                                      workers=args.workers,
                                      store=args.store or None,
                                      dedup=not args.no_dedup)
        summary = result.summary()
        cells = []
        for key in ("MRR", "IRR-1", "IRR-5", "IRR-10"):
            mean = summary[key].mean
            cells.append("-" if np.isnan(mean) else f"{mean:+.3f}")
        print(f"{name:12s} " + " ".join(f"{c:>8s}" for c in cells))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Parallel model × market × seed sweep (see docs/parallelism.md)."""
    from .parallel import run_experiments_parallel

    models = [n.strip() for n in args.models.split(",") if n.strip()]
    markets = [m.strip() for m in args.markets.split(",") if m.strip()]
    config = _config_from_args(args)
    print(f"sweep: {len(models)} model(s) × {len(markets)} market(s) × "
          f"{args.runs} run(s)")
    sweep = run_experiments_parallel(
        models, markets, config=config, n_runs=args.runs,
        base_seed=args.seed, workers=args.workers,
        dataset_seed=args.seed, resume_dir=args.resume_dir,
        telemetry_dir=args.telemetry_dir,
        task_timeout=args.task_timeout,
        store=args.store or None, dedup=not args.no_dedup)
    print(f"\n{'market':14s} {'model':12s} {'MRR':>8s} {'IRR-1':>8s} "
          f"{'IRR-5':>8s} {'IRR-10':>8s}")
    for market, model, *means in sweep.table_rows():
        cells = ["-" if np.isnan(m) else f"{m:+.3f}" for m in means]
        print(f"{market:14s} {model:12s} "
              + " ".join(f"{c:>8s}" for c in cells))
    print(f"\n{sweep.workers} worker(s), {sweep.wall_seconds:.1f}s wall, "
          f"{sweep.executed} run(s) executed, "
          f"{sweep.restored} restored")
    if sweep.telemetry is not None:
        metrics = sweep.telemetry["metrics"]
        print(f"utilization {metrics['utilization_mean']:.0%}, "
              f"retries {metrics['retries']}, "
              f"crashes {metrics['crashes']}")
        if args.telemetry_dir:
            print(f"telemetry report: {args.telemetry_dir}/"
                  f"{sweep.telemetry['run_id']}.json")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Train briefly with full observability and report where time goes."""
    from dataclasses import asdict

    from .obs import (MetricsSink, OpProfiler, RunReport, Tracer,
                      new_run_id, use_tracer)

    if getattr(args, "sparse", False):
        # `--sparse` forces the CSR backend so the op table attributes
        # propagation to `spmm` instead of dense `matmul`.
        args.graph_mode = "sparse"
    dataset = load_market(args.market, seed=args.seed)
    print(f"dataset: {dataset}")
    config = get_spec(args.model).adapt_config(_config_from_args(args))
    print(f"profiling {args.model} ({config.epochs} epochs, "
          f"window {config.window}, graph mode {config.graph_mode}) ...")

    profiler = OpProfiler()
    tracer = Tracer()
    with use_tracer(tracer), profiler:
        predictor = make_predictor(args.model, dataset, seed=args.seed)
        result = predictor.fit_predict(dataset, config)

    print(f"\ntrain {result.train_seconds:.1f}s, "
          f"test {result.test_seconds:.2f}s")
    print(f"\nTop {args.top} ops by wall-clock "
          f"(total {profiler.total_seconds():.2f}s attributed)")
    print(profiler.table(top=args.top))

    phases = tracer.snapshot()
    print(f"\n{'phase':16s} {'count':>9s} {'seconds':>10s}")
    print("-" * 37)
    for name, stat in sorted(phases.items(),
                             key=lambda kv: -kv[1]["seconds"]):
        print(f"{name:16s} {stat['count']:9d} {stat['seconds']:10.4f}")

    arena = profiler.arena_summary()
    report = RunReport(
        run_id=new_run_id("profile"), kind="profile",
        config={"market": args.market, "model": args.model,
                **asdict(config)},
        epoch_losses=[float(x) for x
                      in result.extras.get("epoch_losses", [])],
        phases=phases, ops=profiler.as_rows(),
        metrics={"train_seconds": result.train_seconds,
                 "test_seconds": result.test_seconds,
                 "arena_hit_rate": arena["hit_rate"],
                 "arena_hits": arena["hits"],
                 "arena_misses": arena["misses"],
                 "arena_bytes_reused": arena["bytes_reused"]})
    if args.json_path is not None:
        import json
        path = Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
    else:
        path = MetricsSink(Path.cwd()).write(report)
    print(f"\nJSON report written to {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve checkpoints over HTTP (see docs/serving.md).

    The whole stack comes from :func:`repro.serve.build` — threaded or
    cluster per ``--mode`` — so this command contains zero construction
    logic of its own.
    """
    from .serve import build

    config = _serve_config_from_args(args)
    handle = build(config)
    registry = handle.service.registry
    available = registry.discover()
    if not available:
        handle.close()
        raise SystemExit(f"no checkpoints in {config.checkpoint_dir}; run "
                         "`repro.cli train --checkpoint-dir ...` first")
    if config.mode == "threaded":
        registry.warm([args.version] if args.version else None)
    handle.start()
    host, port = handle.address
    print(f"serving {len(available)} checkpoint(s) from "
          f"{config.checkpoint_dir} on http://{host}:{port} "
          f"(mode: {config.mode})")
    if config.mode == "cluster":
        print(f"  workers: {config.cluster_workers} (shared-memory "
              f"weights, hot reload every {config.watch_interval_s:g}s)")
    else:
        print(f"  loaded: {registry.loaded_versions()}")
    print("  endpoints: /v1/health /v1/models /v1/scores /v1/top_k "
          "/v1/rank /v1/delta /v1/stats /v1/reload")
    try:
        handle.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        handle.close()
        if config.store:
            print(f"serving telemetry + SLO recorded in {config.store}")
    return 0


#: query endpoints → their /v1 paths (also the --endpoint vocabulary)
_QUERY_PATHS = {"top_k": "/v1/top_k", "scores": "/v1/scores",
                "rank": "/v1/rank", "delta": "/v1/delta",
                "stats": "/v1/stats", "models": "/v1/models",
                "health": "/v1/health", "reload": "/v1/reload"}


def cmd_query(args: argparse.Namespace) -> int:
    """Query a running server, printed as JSON.

    ``--endpoint`` accepts a comma-separated list; multiple endpoints
    are fetched concurrently on one asyncio event loop
    (:mod:`repro.serve.client`) and printed as one JSON object keyed by
    endpoint, so a dashboard poll is a single command.
    """
    import json

    from repro.serve.client import ClientConnectError, fetch_endpoints

    endpoints = list(dict.fromkeys(
        e.strip() for e in args.endpoint.split(",") if e.strip()))
    unknown = sorted(set(endpoints) - set(_QUERY_PATHS))
    if unknown:
        raise SystemExit(f"unknown endpoint(s) {unknown}; choose from "
                         f"{sorted(_QUERY_PATHS)}")
    if not endpoints:
        raise SystemExit("no endpoints given")
    params = {}
    if args.top_k is not None:
        params["k"] = args.top_k
    if args.version:
        params["version"] = args.version
    if args.day is not None:
        params["day"] = args.day

    try:
        payloads = fetch_endpoints(
            args.host, args.port,
            {endpoint: _QUERY_PATHS[endpoint] for endpoint in endpoints},
            params=params, timeout=args.timeout,
            concurrency=max(1, min(args.concurrency, len(endpoints))))
    except ClientConnectError as exc:
        raise SystemExit(f"query failed: {exc} (is `repro.cli serve` "
                         f"running on {args.host}:{args.port}?)")
    if len(endpoints) == 1:
        payload = payloads[endpoints[0]]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if "error" not in payload else 1
    print(json.dumps(payloads, indent=2, sort_keys=True))
    return 0 if not any("error" in p for p in payloads.values()) else 1


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a streaming scenario against a live server's /v1/ingest.

    The scenario's stock count is adapted to the served universe
    (discovered from ``/v1/scores``) so event indices always address
    real slots.  With ``--store``, the replay is recorded under the
    scenario fingerprint — a second replay of the identical scenario is
    skipped unless ``--no-dedup`` forces it.
    """
    import json
    import time
    from urllib.error import URLError
    from urllib.request import Request, urlopen

    from .data import StreamingMarket, get_scenario

    base = f"http://{args.host}:{args.port}"
    query = f"?version={args.version}" if args.version else ""
    try:
        with urlopen(base + "/v1/scores" + query,
                     timeout=args.timeout) as response:
            scores = json.loads(response.read().decode("utf-8"))
    except URLError as exc:
        raise SystemExit(f"stream failed: {exc} (is `repro.cli serve` "
                         f"running on {args.host}:{args.port}?)")
    universe = len(scores.get("scores") or ())
    if universe < 2:
        raise SystemExit("served universe too small to stream against")
    overrides = {"num_stocks": universe}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.days is not None:
        overrides["num_days"] = args.days
    scenario = get_scenario(args.scenario, **overrides)
    fingerprint = scenario.fingerprint()
    report_id = f"stream-{fingerprint[:16]}"

    store = None
    if args.store:
        from .store import ExperimentStore
        store = ExperimentStore(args.store)
        recorded = store.execute(
            "SELECT 1 FROM telemetry WHERE report_id = ?", [report_id])
        if recorded and not args.no_dedup:
            print(f"scenario {args.scenario!r} already replayed "
                  f"(fingerprint {fingerprint[:16]}, report "
                  f"{report_id}); --no-dedup forces a re-run")
            store.close()
            return 0

    market = StreamingMarket(scenario)
    print(f"streaming {args.scenario!r}: {universe} stocks, "
          f"{scenario.num_days} day(s) -> {base}/v1/ingest")
    ticks = fallbacks = overruns = edits = 0
    latencies = []
    last = None
    for events in market.replay():
        body = json.dumps(events.to_payload()).encode("utf-8")
        request = Request(base + "/v1/ingest" + query, data=body,
                          headers={"Content-Type": "application/json"},
                          method="POST")
        started = time.perf_counter()
        try:
            with urlopen(request, timeout=args.timeout) as response:
                last = json.loads(response.read().decode("utf-8"))
        except URLError as exc:
            raise SystemExit(f"ingest failed on day {events.day}: {exc}")
        latencies.append(time.perf_counter() - started)
        ticks += 1
        fallbacks += int(bool(last.get("fallback")))
        overruns += int(bool(last.get("overrun")))
        edits += int(last.get("applied_edits", 0))

    lat = np.asarray(latencies, dtype=float)
    p50, p99 = (float(v) for v in np.percentile(lat, (50.0, 99.0)))
    print(f"  {ticks} tick(s): {edits} edge edit(s), "
          f"{fallbacks} fallback(s), {overruns} overrun(s)")
    print(f"  client tick latency p50 {p50 * 1e3:.2f}ms  "
          f"p99 {p99 * 1e3:.2f}ms  max {float(lat.max()) * 1e3:.2f}ms")
    ranking = (last or {}).get("ranking") or []
    if ranking:
        head = ", ".join(f"{r['symbol']}:{r['score']:+.3f}"
                         for r in ranking[:5])
        print(f"  final ranking head: {head}")

    if store is not None:
        from .obs import RunReport
        report = RunReport(
            run_id=report_id, kind="stream",
            config={"scenario": scenario.to_dict(),
                    "fingerprint": fingerprint, "server": base},
            metrics={"ticks": float(ticks),
                     "fallbacks": float(fallbacks),
                     "overruns": float(overruns),
                     "applied_edits": float(edits),
                     "tick_p50_ms": p50 * 1e3,
                     "tick_p99_ms": p99 * 1e3})
        store.record_report(report)
        from .store.schema import latency_histogram
        store.record_slo(
            {"requests": ticks,
             "latency_seconds": {"p50": p50,
                                 "p95": float(np.percentile(lat, 95.0)),
                                 "p99": p99},
             "latency_hist_ms": latency_histogram(lat)},
            source="stream-client", op="ingest", report_id=report_id)
        print(f"replay recorded in {store.path} (report {report_id})")
        store.close()
    return 0 if fallbacks == 0 else 2


def _db_filters(args: argparse.Namespace) -> dict:
    return {name: getattr(args, name) for name
            in ("experiment", "model", "market", "kind", "fingerprint",
                "source")
            if getattr(args, name, None) is not None}


def _open_store(args: argparse.Namespace):
    from .store import ExperimentStore
    path = Path(args.db)
    if not path.exists() and args.db_command != "migrate":
        raise SystemExit(f"no experiment store at {path}; create one with "
                         "`sweep --store`, `train --store`, or "
                         "`db migrate`")
    return ExperimentStore(path)


def cmd_db(args: argparse.Namespace) -> int:
    """Dispatch ``db query/export/report/migrate``."""
    import json

    from .store import (aggregate_runs, metric_names, migrate, query_runs,
                        render_rows, store_report)

    store = _open_store(args)
    if args.db_command == "migrate":
        stats = migrate(store, [Path(s) for s in args.sources])
        for key, value in stats.to_dict().items():
            print(f"{key:20s} {value}")
        return 0

    if args.db_command == "report":
        payload = store_report(store)
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"store: {payload['path']}")
            print("\ntables")
            print(render_rows([payload["tables"]], args.format))
            if payload["experiments"]:
                print("\nexperiments")
                print(render_rows(payload["experiments"], args.format))
            if payload["telemetry_kinds"]:
                print("\ntelemetry")
                print(render_rows([payload["telemetry_kinds"]],
                                  args.format))
            if payload["slo"]:
                print("\nslo (per source × endpoint)")
                print(render_rows(payload["slo"], args.format))
        return 0

    filters = _db_filters(args)
    names = ([m.strip() for m in args.metrics.split(",") if m.strip()]
             if args.metrics else metric_names(store, **filters))
    if args.db_command == "query" and args.aggregate:
        group_by = tuple(g.strip() for g in args.group_by.split(",")
                         if g.strip())
        rows = [{**dict(zip(group_by, agg.group)), "metric": agg.metric,
                 "runs": agg.count, "mean": agg.mean, "std": agg.std,
                 "min": agg.minimum, "max": agg.maximum}
                for agg in aggregate_runs(store, metrics=names,
                                          group_by=group_by, **filters)]
    else:
        rows = [run.row(names) for run in query_runs(store, **filters)]

    rendered = render_rows(rows, args.format)
    output = getattr(args, "output", None)
    if output:
        Path(output).write_text(rendered + "\n")
        print(f"{len(rows)} row(s) written to {output}")
    else:
        print(rendered)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RT-GCN reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("markets", help="list market presets")
    sub.add_parser("models", help="list comparison models")

    train = sub.add_parser("train", help="train one model on one market")
    _add_train_options(train)
    train.add_argument("--model", default="RT-GCN (T)",
                       help="model name (see `models`)")
    train.add_argument("--checkpoint", default=None,
                       help="write a final RT-GCN checkpoint here")
    train.add_argument("--checkpoint-dir", default=None,
                       help="checkpoint the run into this directory "
                            "(atomic, checksummed, keep-last-k; see "
                            "docs/checkpointing.md)")
    train.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="also checkpoint every N batches "
                            "(default: epoch boundaries only)")
    train.add_argument("--keep-last", type=int, default=3,
                       help="periodic checkpoints to retain (best is "
                            "kept in addition)")
    train.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in "
                            "--checkpoint-dir (bitwise-identical to an "
                            "uninterrupted run)")
    train.add_argument("--crash-after", type=int, default=None,
                       metavar="N",
                       help="fault injection: hard-exit after N batches "
                            "(for testing checkpoint recovery)")
    train.add_argument("--store", default=None, metavar="DB",
                       help="record the run (per-epoch losses, metrics, "
                            "checkpoint writes) in this sqlite "
                            "experiment store")

    compare = sub.add_parser("compare", help="compare several models")
    _add_train_options(compare)
    compare.add_argument("--models",
                         default="Rank_LSTM,RSR_E,RT-GCN (T)",
                         help="comma-separated model names")
    compare.add_argument("--runs", type=int, default=3,
                         help="repeated runs per model")
    compare.add_argument("--resume-dir", default=None,
                         help="journal completed runs here and resume an "
                              "interrupted comparison at run k instead "
                              "of run 0")
    compare.add_argument("--workers", type=int, default=1,
                         help="fan each model's runs across N worker "
                              "processes (results identical to serial; "
                              "see docs/parallelism.md)")
    _add_store_options(compare)

    sweep = sub.add_parser(
        "sweep", help="parallel model × market × seed sweep "
                      "(docs/parallelism.md)")
    _add_train_options(sweep, include_market=False)
    sweep.add_argument("--markets", default="nasdaq-mini",
                       help="comma-separated market presets")
    sweep.add_argument("--models", default="Rank_LSTM,RSR_E,RT-GCN (T)",
                       help="comma-separated model names (see `models`)")
    sweep.add_argument("--runs", type=int, default=3,
                       help="repeated seeded runs per (model, market) "
                            "cell")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: one per CPU, "
                            "capped at the number of runs)")
    sweep.add_argument("--resume-dir", default=None,
                       help="journal completed runs per cell; a killed "
                            "sweep re-executes only the missing runs")
    sweep.add_argument("--telemetry-dir", default=None,
                       help="write the executor's schema-v1 JSON report "
                            "here (worker utilization, retries, per-run "
                            "wall time)")
    sweep.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill and retry a run stuck longer than "
                            "this (default: no hang detection)")
    _add_store_options(sweep)

    serve = sub.add_parser(
        "serve", help="serve checkpoints over HTTP (docs/serving.md)")
    _add_serve_options(serve)
    serve.add_argument("--version", default=None,
                       help="checkpoint version to warm at boot "
                            "(default: best, else newest)")

    query = sub.add_parser(
        "query", help="query a running `serve` instance, print JSON")
    query.add_argument("--endpoint", default="top_k",
                       help="comma-separated APIs to call — multiple "
                            "endpoints are fetched concurrently: "
                            "top_k, scores, rank, delta, stats, models, "
                            "health, reload (default: top_k)")
    query.add_argument("--concurrency", type=int, default=4,
                       help="fan-out threads for multi-endpoint queries "
                            "(default: 4)")
    query.add_argument("--top-k", type=int, default=None, metavar="K",
                       help="k for the top_k endpoint")
    query.add_argument("--version", default=None,
                       help="checkpoint version (default: server's best)")
    query.add_argument("--day", type=int, default=None,
                       help="trading day index (default: latest)")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=8151)
    query.add_argument("--timeout", type=float, default=30.0)

    stream = sub.add_parser(
        "stream", help="replay a streaming scenario against a running "
                       "`serve` instance (docs/streaming.md)")
    stream.add_argument("--scenario", default="default",
                        choices=sorted(SCENARIOS),
                        help="scripted scenario; its stock count adapts "
                             "to the served universe (default: default)")
    stream.add_argument("--seed", type=int, default=None,
                        help="override the scenario's event seed")
    stream.add_argument("--days", type=int, default=None,
                        help="override the scenario's day count")
    stream.add_argument("--version", default=None,
                        help="checkpoint version (default: server's "
                             "best)")
    stream.add_argument("--host", default="127.0.0.1")
    stream.add_argument("--port", type=int, default=8151)
    stream.add_argument("--timeout", type=float, default=30.0)
    _add_store_options(stream)

    db = sub.add_parser(
        "db", help="query/export/report/migrate the sqlite experiment "
                   "store (docs/experiment-store.md)")
    db.add_argument("--db", default="experiments.sqlite", metavar="PATH",
                    help="experiment store path "
                         "(default: ./experiments.sqlite)")
    db_sub = db.add_subparsers(dest="db_command", required=True)

    def _add_db_common(p, formats=("table", "json", "csv")):
        p.add_argument("--format", default=formats[0], choices=formats,
                       help=f"output format (default: {formats[0]})")

    def _add_db_filter_flags(p):
        p.add_argument("--experiment", default=None,
                       help="exact experiment name, e.g. "
                            "'Rank_LSTM@nasdaq-mini'")
        p.add_argument("--model", default=None, help="model name filter")
        p.add_argument("--market", default=None,
                       help="market preset filter")
        p.add_argument("--kind", default=None,
                       help="run kind: experiment | train | grid")
        p.add_argument("--source", default=None,
                       help="row provenance: live | journal-v2 | "
                            "migrated")
        p.add_argument("--fingerprint", default=None,
                       help="config fingerprint filter")
        p.add_argument("--metrics", default=None,
                       help="comma-separated metric columns (default: "
                            "all present)")

    db_query = db_sub.add_parser(
        "query", help="print matching runs (or aggregates)")
    _add_db_filter_flags(db_query)
    _add_db_common(db_query)
    db_query.add_argument("--aggregate", action="store_true",
                          help="mean/std/min/max per group instead of "
                               "per-run rows")
    db_query.add_argument("--group-by", default="experiment",
                          help="comma-separated grouping fields for "
                               "--aggregate (default: experiment)")

    db_export = db_sub.add_parser(
        "export", help="dump matching runs to a file or stdout")
    _add_db_filter_flags(db_export)
    _add_db_common(db_export, formats=("json", "csv", "table"))
    db_export.add_argument("--output", default=None, metavar="FILE",
                           help="write here instead of stdout")

    db_report = db_sub.add_parser(
        "report", help="table counts and per-experiment summary")
    _add_db_common(db_report, formats=("table", "json"))

    db_migrate = db_sub.add_parser(
        "migrate", help="ingest journal-v2 / obs-report / bench JSON "
                        "files (idempotent)")
    db_migrate.add_argument("sources", nargs="+", metavar="PATH",
                            help="JSON files or directories of them")

    profile = sub.add_parser(
        "profile", help="profile per-op and per-phase cost of a short run")
    _add_train_options(profile)
    profile.add_argument("--model", default="RT-GCN (T)",
                         help="model name (see `models`)")
    profile.add_argument("--top", type=int, default=15,
                         help="rows of the op table to print")
    profile.add_argument("--sparse", action="store_true",
                         help="force graph_mode=sparse so the op profiler "
                              "attributes spmm separately from dense matmul")
    profile.add_argument("--json", dest="json_path", default=None,
                         help="write the JSON report here "
                              "(default: ./<run_id>.json)")
    # A profile wants a quick, representative run, not a converged model.
    profile.set_defaults(epochs=2, max_train_days=40)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "markets": cmd_markets,
        "models": cmd_models,
        "train": cmd_train,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "profile": cmd_profile,
        "serve": cmd_serve,
        "query": cmd_query,
        "stream": cmd_stream,
        "db": cmd_db,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `db export | head`); devnull
        # the stream so the interpreter's shutdown flush stays quiet.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
