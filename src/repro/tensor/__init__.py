"""NumPy-backed reverse-mode autodiff engine.

This package replaces PyTorch's autograd for the reproduction: it provides
the :class:`Tensor` type with a dynamic computation graph, a functional ops
layer (:mod:`repro.tensor.ops`), gradient-mode switches, and numerical
gradient checking used to validate every model component.
"""

from .arena import (arena, arena_enabled, arena_stats, clear_arena,
                    enable_arena, reset_arena)
from .dtype import (DtypePolicy, accum_dtype, default_dtype, dtype_policy,
                    get_dtype_policy, set_default_dtype)
from .fused import (affine_act_fused, fused_enabled, fused_kernels,
                    gcn_propagate_fused, gru_cell_fused, lstm_cell_fused,
                    set_fused_enabled)
from .grad_mode import (enable_grad, inference_mode, is_grad_enabled,
                        no_grad, set_grad_enabled, tape_node_count)
from .gradcheck import gradcheck, numerical_gradient
from .ops import (binary_cross_entropy, conv1d, cross_entropy, dropout, elu,
                  huber_loss, l1_loss, leaky_relu, linear, log_softmax,
                  mse_loss, one_hot, relu, sigmoid, softmax, tanh)
from .sparse import (SparsePattern, SparseTensor, sddmm, sparse_gather,
                     sparse_segment_sum, spmm)
from .tensor import (Tensor, concat, einsum, ensure_tensor, maximum, stack,
                     where)

__all__ = [
    "Tensor", "concat", "stack", "where", "maximum", "einsum", "ensure_tensor",
    "DtypePolicy", "dtype_policy", "set_default_dtype", "get_dtype_policy",
    "default_dtype", "accum_dtype",
    "arena", "enable_arena", "arena_enabled", "arena_stats", "reset_arena",
    "clear_arena",
    "fused_kernels", "set_fused_enabled", "fused_enabled",
    "affine_act_fused", "lstm_cell_fused", "gru_cell_fused",
    "gcn_propagate_fused",
    "SparsePattern", "SparseTensor", "spmm", "sddmm", "sparse_gather",
    "sparse_segment_sum",
    "no_grad", "enable_grad", "inference_mode", "is_grad_enabled",
    "set_grad_enabled", "tape_node_count",
    "gradcheck", "numerical_gradient",
    "softmax", "log_softmax", "relu", "sigmoid", "tanh", "leaky_relu", "elu",
    "dropout", "conv1d", "linear", "one_hot",
    "mse_loss", "l1_loss", "huber_loss", "binary_cross_entropy",
    "cross_entropy",
]
