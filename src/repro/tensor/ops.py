"""Functional operations built on the autograd :class:`~repro.tensor.Tensor`.

These compose the primitive ops defined on ``Tensor`` (pad, gather, einsum,
arithmetic) so each function is differentiable without bespoke backward
code.  They cover what the paper's models need: softmax attention,
causal/strided 1-D convolution (the TCN of §IV-C), dropout and utilities.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .grad_mode import is_grad_enabled
from .tensor import Tensor, concat, einsum, ensure_tensor, maximum, stack, where

__all__ = [
    "softmax", "log_softmax", "relu", "sigmoid", "tanh", "leaky_relu", "elu",
    "dropout", "conv1d", "linear", "one_hot", "mse_loss", "l1_loss",
    "binary_cross_entropy", "cross_entropy", "huber_loss",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit: ``max(x, 0)``."""
    return ensure_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic function."""
    return ensure_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return ensure_tensor(x).tanh()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """ReLU with a small slope for negative inputs."""
    return ensure_tensor(x).leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit (smooth negative saturation at −alpha)."""
    return ensure_tensor(x).elu(alpha)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero elements with probability ``p`` and rescale.

    A no-op when ``training`` is false or ``p == 0`` so evaluation paths do
    not depend on the random generator.
    """
    if not training or p <= 0.0:
        return ensure_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = ensure_tensor(x)
    gen = rng if rng is not None else np.random.default_rng()
    mask = (gen.uniform(size=x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = ensure_tensor(x) @ weight.swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


def _normalize_padding(padding: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    if isinstance(padding, int):
        return (padding, padding)
    left, right = padding
    return (int(left), int(right))


def _extract_windows(x: Tensor, out_len: int, kernel: int, stride: int,
                     dilation: int) -> Tensor:
    """Sliding windows ``(B, C, out_len, kernel)`` over the last axis.

    Equivalent to fancy-indexed gathering but with a slice-based backward:
    each kernel tap covers a strided slice of the input, so the scatter
    reduces to ``kernel`` vectorized ``+=`` operations instead of
    ``np.add.at`` (which is an order of magnitude slower and dominated the
    training profile).
    """
    starts = np.arange(out_len) * stride
    taps = np.arange(kernel) * dilation
    gather = starts[:, None] + taps[None, :]
    data = x.data[:, :, gather]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        full = np.zeros_like(x.data)
        for j in range(kernel):
            tap_slice = slice(j * dilation,
                              j * dilation + (out_len - 1) * stride + 1,
                              stride)
            full[:, :, tap_slice] += grad[:, :, :, j]
        x._accumulate(full)

    return x._make_child(data, (x,), backward)


def conv1d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Union[int, Tuple[int, int]] = 0,
           dilation: int = 1) -> Tensor:
    """1-D convolution (cross-correlation) over the last axis.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, length)``.
    weight:
        Filters of shape ``(out_channels, in_channels, kernel_size)``.
    bias:
        Optional per-output-channel bias ``(out_channels,)``.
    padding:
        Either a symmetric pad or an explicit ``(left, right)`` pair; causal
        convolution (§IV-C of the paper, WaveNet-style) uses
        ``(dilation * (kernel_size - 1), 0)``.

    Returns
    -------
    Tensor of shape ``(batch, out_channels, out_length)``.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (B, C, L) input, got shape {x.shape}")
    if weight.ndim != 3:
        raise ValueError("conv1d expects (C_out, C_in, k) weight, got shape "
                         f"{weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(f"channel mismatch: input has {x.shape[1]}, weight "
                         f"expects {weight.shape[1]}")
    left, right = _normalize_padding(padding)
    k = weight.shape[2]
    if left or right:
        x = x.pad(((0, 0), (0, 0), (left, right)))
    padded_len = x.shape[2]
    span = (k - 1) * dilation + 1
    if padded_len < span:
        raise ValueError(f"input length {padded_len} shorter than receptive "
                         f"span {span}")
    out_len = (padded_len - span) // stride + 1
    windows = _extract_windows(x, out_len, k, stride, dilation)
    out = einsum("bilk,oik->bol", windows, weight)
    if bias is not None:
        out = out + ensure_tensor(bias).reshape(1, -1, 1)
    return out


def one_hot(indices: np.ndarray, num_classes: int) -> Tensor:
    """Return a constant one-hot tensor for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    eye = np.eye(num_classes)
    return Tensor(eye[indices])


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error, the paper's τ_reg (Eq. 7) averaged over elements."""
    diff = ensure_tensor(prediction) - ensure_tensor(target)
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (ensure_tensor(prediction) - ensure_tensor(target)).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss used by the DQN baseline's temporal-difference updates."""
    diff = ensure_tensor(prediction) - ensure_tensor(target)
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear_part = delta * (abs_diff - 0.5 * delta)
    return where(abs_diff.data <= delta, quadratic, linear_part).mean()


def binary_cross_entropy(logits: Tensor, targets: Tensor) -> Tensor:
    """BCE-with-logits, numerically stable via the log-sum-exp identity."""
    logits = ensure_tensor(logits)
    targets = ensure_tensor(targets)
    # max(x, 0) - x*y + log(1 + exp(-|x|))
    positive = maximum(logits, Tensor(np.zeros_like(logits.data)))
    softplus = (1.0 + (-logits.abs()).exp()).log()
    return (positive - logits * targets + softplus).mean()


def cross_entropy(logits: Tensor, target_indices: np.ndarray) -> Tensor:
    """Mean categorical cross-entropy from logits and integer labels."""
    logp = log_softmax(logits, axis=-1)
    targets = one_hot(np.asarray(target_indices), logits.shape[-1])
    return -(logp * targets).sum(axis=-1).mean()
