"""Backward-pass buffer arena: recycle gradient buffers across steps.

Every backward pass materialises one owned buffer per graph node (the first
``_accumulate`` copy).  In a training loop those buffers have exactly the
same ``(shape, dtype)`` signature step after step, so instead of returning
them to the allocator when the graph is freed, the engine hands them to this
arena and re-acquires them on the next pass.  After a one-step warmup a
steady-state epoch allocates (almost) nothing on the backward path.

The arena is numerics-neutral: acquired buffers are fully overwritten by
``np.copyto`` before use, so results are bitwise-identical with the arena on
or off.  It is disabled by default and switched on by the trainer (see
``TrainConfig.buffer_arena``) or explicitly via :func:`enable_arena` /
:func:`arena`.

Counters (hits, misses, released, bytes_reused, live) are exposed through
:func:`arena_stats` and surfaced by the ``repro.obs`` profiler and the
schema-v1 bench telemetry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = [
    "enable_arena", "arena_enabled", "arena", "arena_stats", "reset_arena",
    "clear_arena",
]

_enabled = False

# Free buffers keyed by (shape, dtype str); most-recently-released reused
# first (LIFO) for cache warmth.
_free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}

# Buffers currently handed out, keyed by id().  Holding a strong reference
# pins the id so a foreign array can never alias a tracked buffer; release()
# only accepts arrays found here, which keeps externally-created arrays (and
# double releases) out of the free lists.
_live: Dict[int, np.ndarray] = {}

_hits = 0
_misses = 0
_released = 0
_bytes_reused = 0


def enable_arena(enabled: bool = True) -> bool:
    """Turn the arena on or off; returns the previous state.

    Disabling drops all pooled buffers so memory is returned; the counters
    are kept so a finished run's hit/miss totals remain readable (zero them
    explicitly with :func:`reset_arena`).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if not _enabled:
        _free.clear()
        _live.clear()
    return previous


def arena_enabled() -> bool:
    """Whether backward temporaries are currently drawn from the arena."""
    return _enabled


@contextmanager
def arena(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping arena use to a block."""
    previous = enable_arena(enabled)
    try:
        yield
    finally:
        enable_arena(previous)


def materialize(grad: np.ndarray, dtype) -> np.ndarray:
    """Return an owned copy of ``grad`` cast to ``dtype``.

    With the arena enabled the copy lands in a recycled buffer when one with
    the right signature is pooled (hit) or a freshly tracked allocation
    (miss); otherwise it is a plain ``astype`` copy.
    """
    if not _enabled:
        return grad.astype(dtype, copy=True)
    global _hits, _misses, _bytes_reused
    key = (grad.shape, np.dtype(dtype).str)
    stack = _free.get(key)
    if stack:
        buf = stack.pop()
        _hits += 1
        _bytes_reused += buf.nbytes
    else:
        buf = np.empty(grad.shape, dtype=dtype)
        _misses += 1
    np.copyto(buf, grad, casting="same_kind")
    _live[id(buf)] = buf
    return buf


def release(buf) -> None:
    """Return a buffer to the pool.  Unknown arrays and ``None`` are ignored."""
    if buf is None or not _enabled:
        return
    global _released
    tracked = _live.pop(id(buf), None)
    if tracked is None:
        return
    _released += 1
    key = (tracked.shape, tracked.dtype.str)
    _free.setdefault(key, []).append(tracked)


def arena_stats() -> Dict[str, int]:
    """Counters since the last :func:`reset_arena`.

    ``misses`` is the arena's allocation count: at steady state (after the
    warmup pass) it should stay flat from step to step.
    """
    pooled = sum(len(v) for v in _free.values())
    pooled_bytes = sum(b.nbytes for v in _free.values() for b in v)
    return {
        "enabled": _enabled,
        "hits": _hits,
        "misses": _misses,
        "released": _released,
        "bytes_reused": _bytes_reused,
        "live": len(_live),
        "pooled": pooled,
        "pooled_bytes": pooled_bytes,
    }


def reset_arena() -> None:
    """Zero the counters (pooled buffers are kept)."""
    global _hits, _misses, _released, _bytes_reused
    _hits = _misses = _released = _bytes_reused = 0


def clear_arena() -> None:
    """Drop every pooled and tracked buffer and zero the counters."""
    _free.clear()
    _live.clear()
    reset_arena()


# A forked child inherits the parent's pooled and live buffers, but any
# in-flight backward graph those buffers belong to stays in the parent —
# reusing them in the child would alias two processes' gradients through
# copy-on-write surprises.  Start every child with an empty arena.
import os as _os

if hasattr(_os, "register_at_fork"):
    _os.register_at_fork(after_in_child=clear_arena)
