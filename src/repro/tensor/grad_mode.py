"""Global gradient-mode switches for the autograd engine.

Mirrors the semantics of ``torch.no_grad`` / ``torch.enable_grad``: inside a
``no_grad()`` block, newly created tensors never record history even if their
inputs require gradients.  The switch is a simple module-level flag because
the reproduction is single-threaded by design.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    """Return whether autograd history is currently being recorded."""
    return _grad_enabled


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable autograd recording."""
    global _grad_enabled
    _grad_enabled = bool(mode)


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables gradient recording.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


@contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables gradient recording inside ``no_grad``."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = True
    try:
        yield
    finally:
        _grad_enabled = previous
