"""Gradient-mode switches and tape accounting for the autograd engine.

Mirrors the semantics of ``torch.no_grad`` / ``torch.enable_grad``: inside a
``no_grad()`` block, newly created tensors never record history even if their
inputs require gradients.

The switch is **thread-local**.  The original implementation used a plain
module-level flag ("the reproduction is single-threaded by design"), which
became a real bug once ``repro.serve`` introduced thread-based inference
workers: a worker entering ``no_grad()`` would silently disable gradient
recording in a concurrently training thread, and vice versa.  Each thread
now starts with gradients enabled and flips only its own state.

The module also counts *tape nodes* — tensors created with recorded history
(parents + a backward closure).  :func:`tape_node_count` is the observable
the serving regression tests assert on: a forward pass executed under
``no_grad()`` / ``inference_mode()`` must not advance it, which is exactly
the "no autograd allocation in serving" guarantee.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class _GradState(threading.local):
    """Per-thread autograd state; every thread starts grad-enabled."""

    def __init__(self):
        self.enabled: bool = True
        self.tape_nodes: int = 0


_state = _GradState()


def is_grad_enabled() -> bool:
    """Return whether this thread is currently recording autograd history."""
    return _state.enabled


def set_grad_enabled(mode: bool) -> None:
    """Enable or disable autograd recording for the calling thread."""
    _state.enabled = bool(mode)


def tape_node_count() -> int:
    """Tensors created *with recorded history* by the calling thread.

    Monotonically increasing; diff two readings around a code block to
    measure how many autograd nodes that block allocated.  A forward pass
    under :func:`no_grad` contributes zero.
    """
    return _state.tape_nodes


def _note_tape_node() -> None:
    """Record that one tensor with autograd history was created."""
    _state.tape_nodes += 1


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables gradient recording.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """
    previous = _state.enabled
    _state.enabled = False
    try:
        yield
    finally:
        _state.enabled = previous


@contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables gradient recording inside ``no_grad``."""
    previous = _state.enabled
    _state.enabled = True
    try:
        yield
    finally:
        _state.enabled = previous


@contextmanager
def inference_mode() -> Iterator[None]:
    """Forward-only execution: gradients off, tape allocation asserted off.

    Semantically :func:`no_grad` today; serving code uses this spelling so
    the intent ("this block must never touch the autograd tape") survives
    any future divergence between the two modes.
    """
    with no_grad():
        yield
