"""Sparse kernels and autograd primitives for graph propagation.

The paper's relation graphs are sparse (<5 % density at NASDAQ scale), yet
the dense path multiplies full ``(N, N)`` adjacencies every time-step.
This module supplies the CSR machinery the graph stack dispatches to:

- :class:`SparsePattern` — an immutable CSR *structure* (row pointers +
  column indices, no values) shared by every op on the same graph;
- :class:`SparseTensor` — a pattern plus a :class:`Tensor` of per-edge
  values, so learned edge weights participate in autograd;
- :func:`spmm` — sparse×dense matmul.  Forward is ``CSR × dense``;
  backward is ``CSRᵀ × grad`` for the dense operand and a gathered
  per-edge inner product (SDDMM) for the value operand, so strategies
  with learnable edge weights keep training;
- :func:`sddmm` — sampled dense-dense matmul: the per-edge inner products
  ``a_i · b_j`` for every stored edge ``(i, j)`` (the sparse form of the
  time-sensitive strategy's feature correlation);
- :func:`sparse_segment_sum` / :func:`sparse_gather` — per-row reductions
  and node→edge broadcasts used by sparse normalization and attention.

Each primitive is *monolithic*: raw NumPy/SciPy forward plus a closure
backward, never a composition of profiled ``Tensor`` ops.  That keeps the
op profiler's attribution clean — a sparse run shows ``spmm`` where a
dense run shows ``matmul``, with no double counting.

SciPy's C-implemented CSR matmul is the kernel backend when available
(it is a declared dependency); a pure-NumPy ``reduceat`` fallback keeps
the module importable without it (set :data:`HAVE_SCIPY` to ``False`` in
tests to exercise the fallback).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import ArrayLike, Tensor, _unbroadcast, ensure_tensor

try:
    from scipy import sparse as _scipy_sparse
except ImportError:                                    # pragma: no cover
    _scipy_sparse = None

#: whether the SciPy CSR kernel backend is active (tests may toggle this
#: module global to force the pure-NumPy fallback)
HAVE_SCIPY = _scipy_sparse is not None

#: graphs at or below this density default to the sparse path under
#: ``graph_mode="auto"``.  The mini test markets sit at 13-17 % density
#: (including self-loops) where dense BLAS still wins; the paper-scale
#: universes are below 5 %, where CSR wins by ~5x.
DEFAULT_DENSITY_THRESHOLD = 0.10

GRAPH_MODES = ("auto", "dense", "sparse")


def resolve_graph_mode(mode: str, density: float,
                       threshold: Optional[float] = None) -> str:
    """Turn an ``auto|dense|sparse`` request into a concrete backend."""
    if mode not in GRAPH_MODES:
        raise ValueError(f"unknown graph mode {mode!r}; expected one of "
                         f"{GRAPH_MODES}")
    if mode != "auto":
        return mode
    limit = DEFAULT_DENSITY_THRESHOLD if threshold is None else threshold
    return "sparse" if density <= limit else "dense"


# ----------------------------------------------------------------------
# CSR structure
# ----------------------------------------------------------------------
class SparsePattern:
    """Immutable CSR sparsity structure (no values).

    Stores ``indptr`` (``shape[0] + 1`` row pointers) and ``indices``
    (column index per stored entry, row-major with ascending columns
    inside each row).  Derived data — the expanded row index per entry
    and the transposed structure — is computed lazily and cached, since
    every op on the same graph shares one pattern instance.
    """

    __slots__ = ("shape", "indptr", "indices", "_rows", "_transpose")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 shape: Tuple[int, int]):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.shape[0] != n_rows + 1:
            raise ValueError(f"indptr must have {n_rows + 1} entries, got "
                             f"shape {indptr.shape}")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if indptr[-1] != indices.shape[0]:
            raise ValueError(f"indptr[-1]={indptr[-1]} does not match "
                             f"{indices.shape[0]} stored indices")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError(f"column indices out of range for {n_cols} "
                             "columns")
        self.shape = (n_rows, n_cols)
        self.indptr = indptr
        self.indices = indices
        self._rows: Optional[np.ndarray] = None
        self._transpose = None

    @classmethod
    def trusted(cls, indptr: np.ndarray, indices: np.ndarray,
                shape: Tuple[int, int],
                rows: Optional[np.ndarray] = None) -> "SparsePattern":
        """Construct without invariant checks.

        For kernels that produce valid CSR structure by construction —
        the streaming delta update edits an already-validated pattern in
        row-major key order, so re-validating every tick is pure
        overhead.  Callers guarantee the ``__init__`` invariants;
        ``rows`` optionally pre-seeds the COO row-expansion cache.
        """
        pattern = cls.__new__(cls)
        pattern.shape = (int(shape[0]), int(shape[1]))
        pattern.indptr = indptr
        pattern.indices = indices
        pattern._rows = rows
        pattern._transpose = None
        return pattern

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "SparsePattern":
        """Structure of the nonzero entries of a dense 2-D mask."""
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
        nonzero = mask != 0
        indptr = np.concatenate(
            [[0], np.cumsum(nonzero.sum(axis=1))]).astype(np.int64)
        _, cols = np.nonzero(nonzero)
        return cls(indptr, cols.astype(np.int64), mask.shape)

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def density(self) -> float:
        size = self.shape[0] * self.shape[1]
        return self.nnz / size if size else 0.0

    @property
    def rows(self) -> np.ndarray:
        """Row index of every stored entry (the COO expansion)."""
        if self._rows is None:
            self._rows = np.repeat(np.arange(self.shape[0], dtype=np.int64),
                                   np.diff(self.indptr))
        return self._rows

    def transpose_data(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR structure of the transpose: ``(t_indptr, t_indices, perm)``.

        ``perm`` maps transposed-entry order back into this pattern's
        entry order, so transposed values are ``values[..., perm]``.
        """
        if self._transpose is None:
            rows, cols = self.rows, self.indices
            perm = np.lexsort((rows, cols))
            counts = np.bincount(cols, minlength=self.shape[1])
            t_indptr = np.concatenate([[0], np.cumsum(counts)])
            self._transpose = (t_indptr.astype(np.int64), rows[perm], perm)
        return self._transpose

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparsePattern):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices))

    def __hash__(self) -> int:                         # identity-hashed
        return id(self)

    def __repr__(self) -> str:
        return (f"SparsePattern(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.4f})")


# ----------------------------------------------------------------------
# kernels (no autograd; operate on raw arrays)
# ----------------------------------------------------------------------
def _kernel_2d(indptr: np.ndarray, indices: np.ndarray, values: np.ndarray,
               dense: np.ndarray, n_rows: int) -> np.ndarray:
    """``CSR(values) @ dense`` for one value vector and one 2-D operand."""
    if HAVE_SCIPY:
        matrix = _scipy_sparse.csr_matrix((values, indices, indptr),
                                          shape=(n_rows, dense.shape[0]))
        return np.asarray(matrix @ dense)
    out = np.zeros((n_rows, dense.shape[1]), dtype=dense.dtype)
    if indices.size == 0:
        return out
    gathered = dense[indices] * values[:, None]
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    out[nonempty] = np.add.reduceat(gathered, indptr[:-1][nonempty], axis=0)
    return out


def _csr_matmul(pattern: SparsePattern, values: np.ndarray,
                dense: np.ndarray, transpose: bool = False) -> np.ndarray:
    """``A @ dense`` (or ``Aᵀ @ dense``) with batched values and operands.

    ``values`` has shape ``(..., nnz)`` (or ``(nnz,)``, shared across the
    batch); ``dense`` has shape ``(..., n_cols, C)``.  Leading dims
    broadcast like NumPy matmul batching.
    """
    n_rows, n_cols = pattern.shape
    indptr, indices = pattern.indptr, pattern.indices
    if transpose:
        indptr, indices, perm = pattern.transpose_data()
        values = values[..., perm]
        n_rows, n_cols = n_cols, n_rows
    # Kernels follow the (float) dtype of their operands — the dtype policy
    # steers them through the tensors it produced, never below float32.
    target = np.promote_types(np.result_type(values, dense), np.float32)
    values = np.asarray(values, dtype=target)
    dense = np.asarray(dense, dtype=target)
    channels = dense.shape[-1]
    lead = np.broadcast_shapes(values.shape[:-1], dense.shape[:-2])
    out_shape = lead + (n_rows, channels)

    if values.ndim == 1:
        # One value vector for the whole batch: a single kernel call on
        # the (n_cols, batch*C) unrolled operand beats a Python loop.
        batched = np.broadcast_to(dense, lead + dense.shape[-2:])
        batch = int(np.prod(lead)) if lead else 1
        stacked = np.ascontiguousarray(
            np.moveaxis(batched.reshape((batch,) + dense.shape[-2:]), 0, 1)
        ).reshape(n_cols, batch * channels)
        out = _kernel_2d(indptr, indices, values, stacked, n_rows)
        return np.moveaxis(out.reshape(n_rows, batch, channels),
                           1, 0).reshape(out_shape)

    flat_values = np.broadcast_to(
        values, lead + values.shape[-1:]).reshape(-1, values.shape[-1])
    flat_dense = np.broadcast_to(
        dense, lead + dense.shape[-2:]).reshape((-1,) + dense.shape[-2:])
    out = np.empty((flat_values.shape[0], n_rows, channels), dtype=target)
    for i in range(flat_values.shape[0]):
        out[i] = _kernel_2d(indptr, indices, flat_values[i], flat_dense[i],
                            n_rows)
    return out.reshape(out_shape)


def _sampled_inner(pattern: SparsePattern, a: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
    """Per-edge inner products ``a[..., i, :] · b[..., j, :]``: ``(..., nnz)``.

    The per-slice ``einsum`` avoids fancy indexing on a middle axis,
    which NumPy handles an order of magnitude slower.
    """
    rows, cols = pattern.rows, pattern.indices
    target = np.promote_types(np.result_type(a, b), np.float32)
    a = np.asarray(a, dtype=target)
    b = np.asarray(b, dtype=target)
    lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    flat_a = np.broadcast_to(a, lead + a.shape[-2:]).reshape(
        (-1,) + a.shape[-2:])
    flat_b = np.broadcast_to(b, lead + b.shape[-2:]).reshape(
        (-1,) + b.shape[-2:])
    out = np.empty((flat_a.shape[0], pattern.nnz), dtype=target)
    for i in range(flat_a.shape[0]):
        out[i] = np.einsum("ec,ec->e", flat_a[i][rows], flat_b[i][cols])
    return out.reshape(lead + (pattern.nnz,))


def _segment_sum_last(values: np.ndarray, indptr: np.ndarray,
                      n_rows: int) -> np.ndarray:
    """Sum the last axis of ``(..., nnz)`` into row segments: ``(..., n)``."""
    out = np.zeros(values.shape[:-1] + (n_rows,), dtype=values.dtype)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if nonempty.size:
        out[..., nonempty] = np.add.reduceat(
            values, indptr[:-1][nonempty], axis=-1)
    return out


# ----------------------------------------------------------------------
# SparseTensor
# ----------------------------------------------------------------------
class SparseTensor:
    """A CSR matrix whose values are a :class:`Tensor` (autograd-aware).

    ``values`` has shape ``(..., nnz)``; leading dims are a batch of
    matrices sharing one sparsity pattern (the time-sensitive strategy's
    ``(T, N, N)`` adjacency stack stores ``(T, nnz)`` values).
    """

    __slots__ = ("pattern", "values")

    def __init__(self, pattern: SparsePattern, values: Union[Tensor,
                                                             np.ndarray]):
        values = ensure_tensor(values)
        if values.shape[-1:] != (pattern.nnz,):
            raise ValueError(f"values last dim {values.shape} does not "
                             f"match pattern nnz {pattern.nnz}")
        self.pattern = pattern
        self.values = values

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dense(cls, dense: ArrayLike,
                   pattern: Optional[SparsePattern] = None) -> "SparseTensor":
        """Sparsify a dense ``(..., N, M)`` tensor.

        Without an explicit ``pattern`` the structure is the union of the
        nonzeros across leading dims; gradients flow back to ``dense``
        through the gather.
        """
        dense = ensure_tensor(dense)
        if dense.ndim < 2:
            raise ValueError(f"need at least 2 dims, got shape {dense.shape}")
        if pattern is None:
            mask = dense.data != 0
            if dense.ndim > 2:
                mask = mask.any(axis=tuple(range(dense.ndim - 2)))
            pattern = SparsePattern.from_mask(mask)
        values = dense[(Ellipsis, pattern.rows, pattern.indices)]
        return cls(pattern, values)

    @classmethod
    def from_csr(cls, csr) -> "SparseTensor":
        """Adopt any CSR-like object exposing ``indptr/indices/data/shape``."""
        pattern = SparsePattern(csr.indptr, csr.indices, csr.shape)
        # Tensor() applies the dtype-policy coercion rule to csr.data.
        return cls(pattern, Tensor(np.asarray(csr.data)))

    # -- views ----------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.values.shape[:-1] + self.pattern.shape

    @property
    def ndim(self) -> int:
        return self.values.ndim + 1

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    @property
    def density(self) -> float:
        return self.pattern.density

    @property
    def requires_grad(self) -> bool:
        return self.values.requires_grad

    def detach(self) -> "SparseTensor":
        return SparseTensor(self.pattern, self.values.detach())

    def to_dense(self) -> Tensor:
        """Densify; gradients scatter back onto the stored entries."""
        values = self.values
        pattern = self.pattern
        index = (Ellipsis, pattern.rows, pattern.indices)
        data = np.zeros(values.shape[:-1] + pattern.shape,
                        dtype=values.data.dtype)
        data[index] = values.data

        def backward(grad: np.ndarray) -> None:
            if values.requires_grad:
                values._accumulate(grad[index])

        return values._make_child(data, (values,), backward)

    def __matmul__(self, dense: ArrayLike) -> Tensor:
        return spmm(self, dense)

    def __repr__(self) -> str:
        return (f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.4f})")


# ----------------------------------------------------------------------
# autograd primitives
# ----------------------------------------------------------------------
def spmm(adj: SparseTensor, dense: ArrayLike) -> Tensor:
    """Sparse × dense matmul ``A @ X`` with gradients for both operands.

    ``adj`` is ``(..., N, M)`` sparse, ``dense`` is ``(..., M, C)``;
    leading dims broadcast.  Backward propagates ``Aᵀ @ grad`` to the
    dense side and the sampled inner products ``grad_i · x_j`` per stored
    edge ``(i, j)`` to the value side — dense gradients never materialize
    an ``(N, N)`` array.
    """
    if not isinstance(adj, SparseTensor):
        raise TypeError(f"spmm expects a SparseTensor, got {type(adj)}")
    dense = ensure_tensor(dense)
    pattern, values = adj.pattern, adj.values
    if dense.shape[-2] != pattern.shape[1]:
        raise ValueError(f"cannot multiply {pattern.shape} sparse by "
                         f"{dense.shape} dense")
    out_data = _csr_matmul(pattern, values.data, dense.data)

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            grad_dense = _csr_matmul(pattern, values.data, grad,
                                     transpose=True)
            dense._accumulate(_unbroadcast(grad_dense, dense.shape))
        if values.requires_grad:
            grad_values = _sampled_inner(pattern, grad, dense.data)
            values._accumulate(_unbroadcast(grad_values, values.shape))

    return values._make_child(out_data, (values, dense), backward)


def sddmm(pattern: SparsePattern, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Sampled dense-dense matmul: ``out_e = a[..., i_e, :] · b[..., j_e, :]``.

    The sparse counterpart of ``a @ b.T`` evaluated only at the stored
    edges — how the time-sensitive strategy's feature correlation avoids
    the dense ``(T, N, N)`` product.  Backward is two CSR matmuls with
    ``grad`` as edge values.
    """
    a = ensure_tensor(a)
    b = ensure_tensor(b)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"inner dims differ: {a.shape} vs {b.shape}")
    if a.shape[-2] != pattern.shape[0] or b.shape[-2] != pattern.shape[1]:
        raise ValueError(f"operands {a.shape} / {b.shape} do not match "
                         f"pattern {pattern.shape}")
    out_data = _sampled_inner(pattern, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            grad_a = _csr_matmul(pattern, grad, b.data)
            a._accumulate(_unbroadcast(grad_a, a.shape))
        if b.requires_grad:
            grad_b = _csr_matmul(pattern, grad, a.data, transpose=True)
            b._accumulate(_unbroadcast(grad_b, b.shape))

    return a._make_child(out_data, (a, b), backward)


def sparse_segment_sum(values: ArrayLike, pattern: SparsePattern) -> Tensor:
    """Row-wise sum of per-edge values: ``(..., nnz) → (..., n_rows)``.

    The sparse form of ``adjacency.sum(axis=-1)`` (degree computation);
    empty rows sum to zero.
    """
    values = ensure_tensor(values)
    if values.shape[-1:] != (pattern.nnz,):
        raise ValueError(f"values {values.shape} do not match pattern nnz "
                         f"{pattern.nnz}")
    rows = pattern.rows
    out_data = _segment_sum_last(values.data, pattern.indptr,
                                 pattern.shape[0])

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(_unbroadcast(grad[..., rows], values.shape))

    return values._make_child(out_data, (values,), backward)


def sparse_gather(node_values: ArrayLike, pattern: SparsePattern,
                  axis: str = "row") -> Tensor:
    """Broadcast per-node values onto edges: ``(..., n) → (..., nnz)``.

    ``axis="row"`` gathers the source-row value of each edge (the sparse
    form of ``vec.unsqueeze(-1)`` against the adjacency); ``axis="col"``
    gathers the column value (``vec.unsqueeze(-2)``).  Backward is the
    matching segment sum over the (transposed) CSR structure.
    """
    node_values = ensure_tensor(node_values)
    if axis == "row":
        index = pattern.rows
        seg_indptr, seg_size = pattern.indptr, pattern.shape[0]
        seg_perm = None
        expected = pattern.shape[0]
    elif axis == "col":
        index = pattern.indices
        seg_indptr, _, seg_perm = pattern.transpose_data()
        seg_size = pattern.shape[1]
        expected = pattern.shape[1]
    else:
        raise ValueError(f"axis must be 'row' or 'col', got {axis!r}")
    if node_values.shape[-1] != expected:
        raise ValueError(f"node values {node_values.shape} do not match "
                         f"pattern {pattern.shape} along {axis}s")
    out_data = node_values.data[..., index]

    def backward(grad: np.ndarray) -> None:
        if node_values.requires_grad:
            # Segment-sum the edge gradient per node; the column variant
            # reorders into transposed-CSR order first so segments are
            # contiguous.
            if seg_perm is not None:
                grad = grad[..., seg_perm]
            summed = _segment_sum_last(grad, seg_indptr, seg_size)
            node_values._accumulate(_unbroadcast(summed, node_values.shape))

    return node_values._make_child(out_data, (node_values,), backward)
