"""Fused composite tape nodes with hand-written VJPs.

The autograd engine's per-node Python dispatch dominates small-op chains:
an LSTM cell alone records ~20 tape nodes per step.  Each fused op below
collapses one such chain (affine+activation, a full LSTM/GRU cell, GCN
propagation) into one or two nodes with a closed-form backward, cutting
tape length and intermediate materialization on both dense and sparse
graph modes.

Equivalence contract
--------------------
Every fused forward/backward replicates the *exact* NumPy expression
sequence of the composed ops it replaces (same operand layouts, same
association order, same numerically-stable sigmoid), so under the
``float64`` policy results are bitwise-identical with fusion on or off;
under ``float32`` they agree to rounding (see ``docs/performance.md``).
The gradcheck + per-policy equivalence suite in
``tests/tensor/test_fused_ops.py`` gates every op.

Fusion is process-globally switchable (:func:`set_fused_enabled`,
:func:`fused_kernels`); ``repro.nn`` layers consult the switch on every
forward so benchmarks can compare paths in one process.

Arena note: backward closures never retain their ``grad`` argument (the
buffer is recycled as soon as the closure returns); cross-node stashes
(LSTM's h→c hand-off) store freshly computed products instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

from .sparse import SparseTensor, _csr_matmul, _sampled_inner
from .tensor import Tensor, _unbroadcast, ensure_tensor

__all__ = [
    "set_fused_enabled", "fused_enabled", "fused_kernels",
    "affine_act_fused", "lstm_cell_fused", "gru_cell_fused",
    "gcn_propagate_fused",
]

_enabled = True


def set_fused_enabled(enabled: bool = True) -> bool:
    """Globally enable/disable the fused kernels; returns the prior state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def fused_enabled() -> bool:
    """Whether layers currently route through the fused tape nodes."""
    return _enabled


@contextmanager
def fused_kernels(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping the fusion switch to a block."""
    previous = set_fused_enabled(enabled)
    try:
        yield
    finally:
        set_fused_enabled(previous)


# ----------------------------------------------------------------------
# shared scalar kernels (identical formulas to the Tensor methods)
# ----------------------------------------------------------------------
def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Must match Tensor.sigmoid bit for bit.
    return np.where(x >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(x, -500, 500))),
                    np.exp(np.clip(x, -500, 500))
                    / (1.0 + np.exp(np.clip(x, -500, 500))))


_ACTIVATIONS = ("identity", "relu", "tanh", "sigmoid", "leaky_relu")


def _activate(pre: np.ndarray, activation: str) -> np.ndarray:
    if activation == "identity":
        return pre
    if activation == "relu":
        return pre * (pre > 0)
    if activation == "tanh":
        return np.tanh(pre)
    if activation == "sigmoid":
        return _sigmoid(pre)
    if activation == "leaky_relu":
        return np.where(pre > 0, pre, pre * 0.01)
    raise ValueError(f"unknown activation {activation!r}; expected one of "
                     f"{_ACTIVATIONS}")


def _activate_vjp(grad: np.ndarray, pre: np.ndarray, out: np.ndarray,
                  activation: str) -> np.ndarray:
    """d(loss)/d(pre) given d(loss)/d(out), matching the composed backwards."""
    if activation == "identity":
        return grad
    if activation == "relu":
        return grad * (pre > 0)
    if activation == "tanh":
        return grad * (1.0 - out ** 2)
    if activation == "sigmoid":
        return grad * out * (1.0 - out)
    if activation == "leaky_relu":
        return grad * np.where(pre > 0, 1.0, 0.01)
    raise ValueError(f"unknown activation {activation!r}")


def _weight_grad(inp: np.ndarray, dgrad: np.ndarray,
                 weight: Tensor) -> np.ndarray:
    """Gradient for a PyTorch-layout ``(out, in)`` weight of ``inp @ W.T``.

    Mirrors the composed path (matmul backward on the swapaxes view, then
    the swapaxes node's transpose): ``(inpᵀ @ dgrad)`` reduced over batch
    axes, transposed back to ``(out, in)``.
    """
    gt = np.swapaxes(inp, -1, -2) @ dgrad
    gt = _unbroadcast(gt, (weight.shape[1], weight.shape[0]))
    return np.swapaxes(gt, -1, -2)


# ----------------------------------------------------------------------
# fused affine + activation (Linear layers)
# ----------------------------------------------------------------------
def affine_act_fused(x: Tensor, weight: Tensor,
                     bias: Optional[Tensor] = None,
                     activation: str = "identity") -> Tensor:
    """``act(x @ weight.T + bias)`` as a single tape node.

    Replaces the matmul + swapaxes + add + activation chain of
    ``ops.linear`` composed with an activation (4-5 nodes → 1).
    """
    x = ensure_tensor(x)
    pre = x.data @ weight.data.swapaxes(-1, -2)
    if bias is not None:
        pre = pre + bias.data
    out_data = _activate(pre, activation)

    def backward(grad: np.ndarray) -> None:
        dpre = _activate_vjp(grad, pre, out_data, activation)
        if x.requires_grad:
            x._accumulate(_unbroadcast(dpre @ weight.data, x.shape))
        if weight.requires_grad:
            weight._accumulate(_weight_grad(x.data, dpre, weight))
        if bias is not None and bias.requires_grad:
            bias._accumulate(_unbroadcast(dpre, bias.shape))

    parents: Tuple[Tensor, ...] = (x, weight)
    if bias is not None:
        parents = parents + (bias,)
    return x._make_child(out_data, parents, backward)


# ----------------------------------------------------------------------
# fused LSTM cell
# ----------------------------------------------------------------------
def lstm_cell_fused(x: Tensor, h_prev: Tensor, c_prev: Tensor,
                    w_ih: Tensor, w_hh: Tensor, bias: Tensor,
                    hidden_size: int) -> Tuple[Tensor, Tensor]:
    """One LSTM step ``(h, c)`` as two tape nodes instead of ~20.

    Gate order is ``i, f, g, o`` (matching :class:`repro.nn.LSTMCell`).
    The ``c`` node owns all six inputs; the ``h`` node depends only on
    ``c``.  ``h``'s backward runs first (reverse topological order),
    accumulates h's contribution into ``c``'s gradient through the normal
    engine path, and stashes the output-gate product for ``c``'s backward
    — a freshly computed array, never the (recyclable) grad buffer itself.
    """
    x = ensure_tensor(x)
    h_prev = ensure_tensor(h_prev)
    c_prev = ensure_tensor(c_prev)
    H = hidden_size
    gates = (x.data @ w_ih.data.swapaxes(-1, -2)
             + h_prev.data @ w_hh.data.swapaxes(-1, -2) + bias.data)
    i = _sigmoid(gates[..., 0 * H:1 * H])
    f = _sigmoid(gates[..., 1 * H:2 * H])
    g = np.tanh(gates[..., 2 * H:3 * H])
    o = _sigmoid(gates[..., 3 * H:4 * H])
    c_data = f * c_prev.data + i * g
    tanh_c = np.tanh(c_data)
    h_data = o * tanh_c

    ctx = {"grad_o": None}

    def backward_c(grad_c: np.ndarray) -> None:
        do = ctx["grad_o"]
        ctx["grad_o"] = None
        di = grad_c * g
        df = grad_c * c_prev.data
        dg = grad_c * i
        di_pre = di * i * (1.0 - i)
        df_pre = df * f * (1.0 - f)
        dg_pre = dg * (1.0 - g ** 2)
        do_pre = (do * o * (1.0 - o) if do is not None
                  else np.zeros_like(o))
        dgates = np.concatenate([di_pre, df_pre, dg_pre, do_pre], axis=-1)
        if x.requires_grad:
            x._accumulate(_unbroadcast(dgates @ w_ih.data, x.shape))
        if h_prev.requires_grad:
            h_prev._accumulate(_unbroadcast(dgates @ w_hh.data, h_prev.shape))
        if c_prev.requires_grad:
            c_prev._accumulate(_unbroadcast(grad_c * f, c_prev.shape))
        if w_ih.requires_grad:
            w_ih._accumulate(_weight_grad(x.data, dgates, w_ih))
        if w_hh.requires_grad:
            w_hh._accumulate(_weight_grad(h_prev.data, dgates, w_hh))
        if bias.requires_grad:
            bias._accumulate(_unbroadcast(dgates, bias.shape))

    c = x._make_child(c_data, (x, h_prev, c_prev, w_ih, w_hh, bias),
                      backward_c)

    def backward_h(grad_h: np.ndarray) -> None:
        # h = o * tanh(c): route tanh's share into c's gradient through the
        # engine, keep the output-gate share for c's backward.
        dtanh = grad_h * o
        c._accumulate(dtanh * (1.0 - tanh_c ** 2))
        ctx["grad_o"] = grad_h * tanh_c

    h = c._make_child(h_data, (c,), backward_h)
    return h, c


# ----------------------------------------------------------------------
# fused GRU cell
# ----------------------------------------------------------------------
def gru_cell_fused(x: Tensor, h_prev: Tensor, w_ih: Tensor, w_hh: Tensor,
                   b_ih: Tensor, b_hh: Tensor, hidden_size: int) -> Tensor:
    """One GRU step as a single tape node (gate order ``r, z, n``)."""
    x = ensure_tensor(x)
    h_prev = ensure_tensor(h_prev)
    H = hidden_size
    gi = x.data @ w_ih.data.swapaxes(-1, -2) + b_ih.data
    gh = h_prev.data @ w_hh.data.swapaxes(-1, -2) + b_hh.data
    gh_n = gh[..., 2 * H:3 * H]
    r = _sigmoid(gi[..., 0 * H:1 * H] + gh[..., 0 * H:1 * H])
    z = _sigmoid(gi[..., 1 * H:2 * H] + gh[..., 1 * H:2 * H])
    n = np.tanh(gi[..., 2 * H:3 * H] + r * gh_n)
    out_data = (1.0 - z) * n + z * h_prev.data

    def backward(grad: np.ndarray) -> None:
        dz = grad * h_prev.data - grad * n
        dn = grad * (1.0 - z)
        dn_pre = dn * (1.0 - n ** 2)
        dr = dn_pre * gh_n
        dr_pre = dr * r * (1.0 - r)
        dz_pre = dz * z * (1.0 - z)
        dgi = np.concatenate([dr_pre, dz_pre, dn_pre], axis=-1)
        dgh = np.concatenate([dr_pre, dz_pre, dn_pre * r], axis=-1)
        if x.requires_grad:
            x._accumulate(_unbroadcast(dgi @ w_ih.data, x.shape))
        if h_prev.requires_grad:
            h_prev._accumulate(_unbroadcast(
                dgh @ w_hh.data + grad * z, h_prev.shape))
        if w_ih.requires_grad:
            w_ih._accumulate(_weight_grad(x.data, dgi, w_ih))
        if w_hh.requires_grad:
            w_hh._accumulate(_weight_grad(h_prev.data, dgh, w_hh))
        if b_ih.requires_grad:
            b_ih._accumulate(_unbroadcast(dgi, b_ih.shape))
        if b_hh.requires_grad:
            b_hh._accumulate(_unbroadcast(dgh, b_hh.shape))

    return x._make_child(out_data, (x, h_prev, w_ih, w_hh, b_ih, b_hh),
                         backward)


# ----------------------------------------------------------------------
# fused GCN propagation
# ----------------------------------------------------------------------
def gcn_propagate_fused(x: Tensor, adj, weight: Tensor,
                        bias: Optional[Tensor] = None,
                        activation: str = "identity") -> Tensor:
    """``act(Â (x Θᵀ) + b)`` as one tape node for dense *and* sparse ``Â``.

    Replaces the linear + (spmm|matmul) + bias-add (+ activation) chain of
    :class:`repro.nn.GraphConv`.  A dense adjacency may itself require
    grad (the time-sensitive strategy's per-step stacks); a sparse
    adjacency contributes through its value vector, with the value
    gradient computed as a sampled inner product so no dense ``(N, N)``
    gradient ever materializes.
    """
    x = ensure_tensor(x)
    support = x.data @ weight.data.swapaxes(-1, -2)
    if isinstance(adj, SparseTensor):
        pattern, values = adj.pattern, adj.values
        pre = _csr_matmul(pattern, values.data, support)
        if bias is not None:
            pre = pre + bias.data
        out_data = _activate(pre, activation)

        def backward(grad: np.ndarray) -> None:
            dpre = _activate_vjp(grad, pre, out_data, activation)
            if x.requires_grad or weight.requires_grad:
                dsupport = _csr_matmul(pattern, values.data, dpre,
                                       transpose=True)
                dsupport = _unbroadcast(dsupport, support.shape)
                if x.requires_grad:
                    x._accumulate(_unbroadcast(dsupport @ weight.data,
                                               x.shape))
                if weight.requires_grad:
                    weight._accumulate(_weight_grad(x.data, dsupport, weight))
            if values.requires_grad:
                grad_values = _sampled_inner(pattern, dpre, support)
                values._accumulate(_unbroadcast(grad_values, values.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(_unbroadcast(dpre, bias.shape))

        parents: Tuple[Tensor, ...] = (x, weight, values)
    else:
        adj = ensure_tensor(adj)
        pre = adj.data @ support
        if bias is not None:
            pre = pre + bias.data
        out_data = _activate(pre, activation)

        def backward(grad: np.ndarray) -> None:
            dpre = _activate_vjp(grad, pre, out_data, activation)
            if x.requires_grad or weight.requires_grad:
                dsupport = _unbroadcast(
                    np.swapaxes(adj.data, -1, -2) @ dpre, support.shape)
                if x.requires_grad:
                    x._accumulate(_unbroadcast(dsupport @ weight.data,
                                               x.shape))
                if weight.requires_grad:
                    weight._accumulate(_weight_grad(x.data, dsupport, weight))
            if adj.requires_grad:
                adj._accumulate(_unbroadcast(
                    dpre @ np.swapaxes(support, -1, -2), adj.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(_unbroadcast(dpre, bias.shape))

        parents = (x, weight, adj)
    if bias is not None:
        parents = parents + (bias,)
    return x._make_child(out_data, parents, backward)
