"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the foundation the whole reproduction is built on: the paper's
models were implemented in PyTorch, which is unavailable in this environment,
so we provide a compatible (small) autograd engine.  A :class:`Tensor` wraps a
``numpy.ndarray`` together with an optional gradient and a record of the
operation that produced it.  Calling :meth:`Tensor.backward` walks the
recorded graph in reverse topological order and accumulates gradients into
every leaf tensor with ``requires_grad=True``.

Design notes
------------
- All operators are broadcasting-aware: gradients flowing into an input that
  was broadcast are summed back down to the input's shape
  (:func:`_unbroadcast`).
- The graph is dynamic (define-by-run) and freed after ``backward`` unless
  ``retain_graph=True`` is passed.
- Data is kept in ``float64`` by default for numerical robustness; the
  process-wide policy (:mod:`repro.tensor.dtype`) can switch storage to
  ``float32`` for speed, with reductions optionally accumulating in
  ``float64`` under the ``"mixed"`` policy.
- Backward-pass gradient buffers are recycled across steps through a global
  :mod:`repro.tensor.arena` when enabled, so steady-state training epochs
  allocate almost nothing.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .arena import materialize as _arena_materialize
from .arena import release as _arena_release
from .dtype import accum_dtype, default_dtype, resolve_dtype
from .grad_mode import _note_tape_node, is_grad_enabled

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Historical module constant, kept for external references; the live default
# is policy-driven (see repro.tensor.dtype).
_DEFAULT_DTYPE = np.float64


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting.

    When ``a + b`` broadcasts ``b`` from shape ``shape`` up to ``grad.shape``,
    the gradient with respect to ``b`` is the sum of ``grad`` over every axis
    that was added or stretched.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    if dtype is not None:
        return np.asarray(value, dtype=dtype)
    arr = np.asarray(value)
    target = resolve_dtype(arr)
    return arr if arr.dtype == target else arr.astype(target)


def ensure_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray``.
    requires_grad:
        If ``True``, operations on this tensor are recorded so that
        :meth:`backward` can compute ``d(output)/d(this)``.
    name:
        Optional label used in ``repr`` and error messages.
    dtype:
        Explicit storage dtype.  When omitted, floating inputs keep their
        dtype unless wider than the active policy's storage (never widened,
        narrowed when wider); other inputs are cast to the policy storage.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        if dtype is not None:
            arr = np.asarray(data, dtype=dtype)
        else:
            arr = np.asarray(data)
            target = resolve_dtype(arr)
            if arr.dtype != target:
                arr = arr.astype(target)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        # The resolved dtype is passed through explicitly so an explicit
        # ``dtype=`` survives even when it is wider than the policy storage.
        dtype = dtype or default_dtype()
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad,
                      dtype=dtype)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = dtype or default_dtype()
        return Tensor(np.ones(shape, dtype=dtype), requires_grad, dtype=dtype)

    @staticmethod
    def full(shape: Sequence[int], fill_value: float,
             requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = dtype or default_dtype()
        return Tensor(np.full(shape, fill_value, dtype=dtype), requires_grad,
                      dtype=dtype)

    @staticmethod
    def eye(n: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = dtype or default_dtype()
        return Tensor(np.eye(n, dtype=dtype), requires_grad, dtype=dtype)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              requires_grad: bool = False, scale: float = 1.0,
              dtype=None) -> "Tensor":
        gen = rng if rng is not None else np.random.default_rng()
        # Draw in float64 then narrow: the RNG stream consumption (and thus
        # seed reproducibility across policies) is dtype-independent.
        values = gen.standard_normal(shape) * scale
        return Tensor(values, requires_grad, dtype=dtype or default_dtype())

    @staticmethod
    def uniform(*shape: int, low: float = 0.0, high: float = 1.0,
                rng: Optional[np.random.Generator] = None,
                requires_grad: bool = False, dtype=None) -> "Tensor":
        gen = rng if rng is not None else np.random.default_rng()
        values = gen.uniform(low, high, shape)
        return Tensor(values, requires_grad, dtype=dtype or default_dtype())

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        _arena_release(self.grad)
        self.grad = None

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype``."""
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{label})\n{self.data!r}"

    def __len__(self) -> int:
        return len(self.data)

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Tuple["Tensor", ...],
                    backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output, recording history only when appropriate."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
            _note_tape_node()
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Gradients live in the tensor's own storage dtype.  The copy
            # (into a recycled arena buffer when the arena is enabled) also
            # guarantees no backward closure's view of another node's grad
            # buffer survives in ``self.grad``.
            self.grad = _arena_materialize(grad, self.data.dtype)
        else:
            np.add(self.grad, grad, out=self.grad, casting="same_kind")

    def backward(self, grad: Optional[ArrayLike] = None,
                 retain_graph: bool = False) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0`` for scalar tensors.
        retain_graph:
            Keep the recorded graph so ``backward`` may be called again.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar "
                                   f"tensors (shape={self.shape})")
            grad = np.ones_like(self.data)
        seed = _as_array(grad)
        if seed.shape != self.data.shape:
            seed = np.broadcast_to(seed, self.data.shape).copy()

        order = self._topological_order()
        # Interior nodes must start each backward pass with a clean slate;
        # only leaves accumulate across calls (PyTorch semantics).  Without
        # this, a second backward over a retained graph double-counts.
        for node in order:
            if node._parents:
                _arena_release(node.grad)
                node.grad = None
        # Seed the root outside the arena: its grad stays readable after
        # backward (it is exempt from the interior free loop below), so an
        # arena buffer here would leak into the live set when the root is
        # garbage-collected without a release.
        if self.grad is None:
            self.grad = seed.astype(self.data.dtype, copy=True)
        else:
            np.add(self.grad, seed, out=self.grad, casting="same_kind")
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            if not retain_graph and node is not self:
                # Interior gradients are not needed by callers; free them so
                # long training loops do not grow memory.  Released buffers
                # return to the arena for the next step's backward pass.
                if node._parents:
                    _arena_release(node.grad)
                    node.grad = None
            if not retain_graph:
                node._backward = None
                node._parents = ()

    def _topological_order(self) -> list:
        order: list = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make_child(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make_child(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make_child(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(
                    -grad * self.data / (other.data ** 2), other.shape))

        return self._make_child(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1))

        return self._make_child(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_a = grad[..., None] * b
                    ga = np.expand_dims(grad, -1) * b
                elif a.ndim == 1:
                    # (n,) @ (n, m) -> (m,): grad_a = grad @ b.T
                    ga = grad @ np.swapaxes(b, -1, -2)
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a, grad)
                elif b.ndim == 1:
                    gb = (np.swapaxes(a, -1, -2)
                          @ np.expand_dims(grad, -1)).squeeze(-1)
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, b.shape))

        return self._make_child(data, (self, other), backward)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) @ self

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return self._make_child(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_child(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / data)

        return self._make_child(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make_child(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return self._make_child(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        data = np.where(self.data >= 0,
                        1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
                        np.exp(np.clip(self.data, -500, 500))
                        / (1.0 + np.exp(np.clip(self.data, -500, 500))))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return self._make_child(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_child(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, self.data * negative_slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return self._make_child(data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        expm1 = alpha * np.expm1(np.minimum(self.data, 0.0))
        data = np.where(mask, self.data, expm1)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, expm1 + alpha))

        return self._make_child(data, (self,), backward)

    def clip(self, low: Optional[float] = None,
             high: Optional[float] = None) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        accum = accum_dtype()
        if (self.data.dtype.kind == "f"
                and accum.itemsize > self.data.dtype.itemsize):
            # Mixed policy: accumulate reductions wide, store narrow.
            data = self.data.sum(axis=axis, keepdims=keepdims,
                                 dtype=accum).astype(self.data.dtype)
        else:
            data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make_child(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def std(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        return (self.var(axis=axis, keepdims=keepdims) + eps).sqrt()

    def max(self, axis: Optional[int] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                d = np.expand_dims(d, axis)
            mask = (self.data == d)
            # Split gradient between ties, matching the subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return self._make_child(data, (self,), backward)

    def min(self, axis: Optional[int] = None,
            keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return self._make_child(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.ndim)))
        if len(order) == 1 and isinstance(order[0], (tuple, list)):
            order = tuple(order[0])
        data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make_child(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        data = self.data.swapaxes(axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.swapaxes(axis1, axis2))

        return self._make_child(data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        data = self.data.squeeze(axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return self._make_child(data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return self._make_child(data, (self,), backward)

    def broadcast_to(self, shape: Sequence[int]) -> "Tensor":
        shape = tuple(shape)
        data = np.broadcast_to(self.data, shape).copy()

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))

        return self._make_child(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make_child(data, (self,), backward)

    def pad(self, pad_width: Sequence[Tuple[int, int]],
            value: float = 0.0) -> "Tensor":
        pad_width = tuple(tuple(p) for p in pad_width)
        data = np.pad(self.data, pad_width, constant_values=value)
        slices = tuple(slice(lo, dim + lo)
                       for (lo, _), dim in zip(pad_width, self.shape))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[slices])

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (no gradient — returned as plain data tensors)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data > _as_array(other))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data < _as_array(other))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data >= _as_array(other))

    def __le__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data <= _as_array(other))


# ----------------------------------------------------------------------
# module-level graph-combining functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(lo), int(hi))
                t._accumulate(grad[tuple(index)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
        _note_tape_node()
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, moved):
            if t.requires_grad:
                t._accumulate(g)

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
        _note_tape_node()
    return out


def where(condition: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    cond = _as_array(condition).astype(bool)
    a = ensure_tensor(a)
    b = ensure_tensor(b)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    requires = is_grad_enabled() and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = (a, b)
        out._backward = backward
        _note_tape_node()
    return out


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise max with subgradient split at ties."""
    a = ensure_tensor(a)
    b = ensure_tensor(b)
    data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a_wins = a.data > b.data
        ties = a.data == b.data
        b_wins = ~a_wins & ~ties
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * (a_wins + 0.5 * ties), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (b_wins + 0.5 * ties), b.shape))

    requires = is_grad_enabled() and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = (a, b)
        out._backward = backward
        _note_tape_node()
    return out


def einsum(subscripts: str, *operands: Tensor) -> Tensor:
    """Autodiff-aware ``numpy.einsum`` restricted to explicit-output form.

    Supports the subset used by the model code: two-or-more operand
    contractions written with an explicit ``->`` output, no ellipses and no
    repeated indices within a single operand.
    """
    if "->" not in subscripts:
        raise ValueError("einsum requires explicit '->' output subscripts")
    if "..." in subscripts:
        raise ValueError("ellipsis subscripts are not supported")
    tensors = [ensure_tensor(op) for op in operands]
    in_specs, out_spec = subscripts.split("->")
    specs = in_specs.split(",")
    if len(specs) != len(tensors):
        raise ValueError("operand count does not match subscripts")
    data = np.einsum(subscripts, *[t.data for t in tensors],
                     optimize=True)

    dim_of = {}
    for spec, t in zip(specs, tensors):
        for letter, n in zip(spec, t.shape):
            dim_of[letter] = n

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if not t.requires_grad:
                continue
            other_specs = [s for j, s in enumerate(specs) if j != i]
            other_data = [x.data for j, x in enumerate(tensors) if j != i]
            # d/d(op_i) = einsum(grad, other ops) routed to op_i's indices.
            # Letters of op_i missing from (out + others) were summed over in
            # the forward pass; recover them by broadcasting afterwards.
            known = set(out_spec)
            for s in other_specs:
                known.update(s)
            target = specs[i]
            reachable = "".join(c for c in target if c in known)
            sub = ",".join([out_spec] + other_specs) + "->" + reachable
            g = np.einsum(sub, grad, *other_data, optimize=True)
            if reachable != target:
                # Insert broadcast axes for letters that were reduced away.
                expanded_shape = []
                src_axis = 0
                for c in target:
                    if c in known:
                        expanded_shape.append(g.shape[src_axis])
                        src_axis += 1
                    else:
                        expanded_shape.append(1)
                order = [c for c in target if c in known]
                # reorder reachable letters to match their order in target
                perm = [reachable.index(c) for c in order]
                g = g.transpose(perm).reshape(expanded_shape)
                g = np.broadcast_to(g, t.shape).copy()
            else:
                # reorder axes to match target spec (einsum output follows sub)
                pass
            t._accumulate(g)

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
        _note_tape_node()
    return out
