"""Process-level dtype policy for the tensor engine.

Every array the engine materialises — tensor storage, parameter init, sparse
kernel temporaries, Adam state — is sized by the active :class:`DtypePolicy`.
The historical behaviour (float64 everywhere) remains the default; switching
to ``float32`` roughly halves memory traffic on the dense propagation path,
and ``mixed`` keeps fp32 storage while accumulating reductions in fp64 for
better-conditioned losses.

Coercion rule (shared by ``Tensor.__init__`` and ``_as_array``): an explicit
``dtype=`` argument always wins; floating inputs are never silently *widened*
but are *narrowed* to the policy's storage dtype when wider; non-float inputs
(ints, bools, lists) are cast to the storage dtype.  This respects arrays the
caller already constructed while still letting ``dtype_policy("float32")``
convert a float64 dataset to fp32 at the tensor boundary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, NamedTuple, Union

import numpy as np

__all__ = [
    "DtypePolicy", "get_dtype_policy", "set_default_dtype", "dtype_policy",
    "default_dtype", "accum_dtype", "resolve_dtype",
]


class DtypePolicy(NamedTuple):
    """Named pair of storage and accumulation dtypes.

    ``storage`` is what tensors, parameters, and optimizer state are kept in;
    ``accumulation`` is the dtype reductions (``sum``/``mean``) accumulate in
    before the result is cast back to ``storage``.
    """

    name: str
    storage: np.dtype
    accumulation: np.dtype


_POLICIES = {
    "float64": DtypePolicy("float64", np.dtype(np.float64), np.dtype(np.float64)),
    "float32": DtypePolicy("float32", np.dtype(np.float32), np.dtype(np.float32)),
    "mixed": DtypePolicy("mixed", np.dtype(np.float32), np.dtype(np.float64)),
}

_ALIASES = {
    np.dtype(np.float64): "float64",
    np.dtype(np.float32): "float32",
}

_active = _POLICIES["float64"]


def _lookup(policy: Union[str, np.dtype, type, DtypePolicy]) -> DtypePolicy:
    if isinstance(policy, DtypePolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICIES[policy]
        except KeyError:
            raise ValueError(
                f"unknown dtype policy {policy!r}; expected one of "
                f"{sorted(_POLICIES)}") from None
    name = _ALIASES.get(np.dtype(policy))
    if name is None:
        raise ValueError(f"unsupported default dtype {policy!r}; expected "
                         "float32 or float64")
    return _POLICIES[name]


def get_dtype_policy() -> DtypePolicy:
    """Return the active policy (process-wide)."""
    return _active


def set_default_dtype(policy: Union[str, np.dtype, type, DtypePolicy]) -> DtypePolicy:
    """Set the process-wide dtype policy; returns the previous one.

    Accepts a policy name (``"float64"``, ``"float32"``, ``"mixed"``), a
    NumPy float dtype, or a :class:`DtypePolicy`.
    """
    global _active
    previous = _active
    _active = _lookup(policy)
    return previous


@contextmanager
def dtype_policy(policy: Union[str, np.dtype, type, DtypePolicy]) -> Iterator[DtypePolicy]:
    """Context manager scoping the dtype policy to a block."""
    previous = set_default_dtype(policy)
    try:
        yield _active
    finally:
        set_default_dtype(previous)


def default_dtype() -> np.dtype:
    """Storage dtype of the active policy."""
    return _active.storage


def accum_dtype() -> np.dtype:
    """Accumulation dtype of the active policy (≥ storage width)."""
    return _active.accumulation


def resolve_dtype(array: np.ndarray) -> np.dtype:
    """Apply the coercion rule to an already-constructed array's dtype.

    Returns the dtype the array should be stored as under the active policy:
    floating dtypes are kept unless wider than storage (never widen, narrow
    when wider); everything else maps to the storage dtype.
    """
    storage = _active.storage
    dt = array.dtype
    if dt.kind == "f":
        return dt if dt.itemsize <= storage.itemsize else storage
    return storage
