"""Numerical gradient checking for the autograd engine.

``gradcheck`` compares analytic gradients produced by ``Tensor.backward``
against central finite differences.  It is used throughout the test-suite to
validate every layer and loss the reproduction defines.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[[], Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-6, atol: float = 1e-5,
              rtol: float = 1e-4) -> bool:
    """Verify analytic gradients of scalar ``fn()`` against finite differences.

    Parameters
    ----------
    fn:
        Zero-argument callable returning a scalar :class:`Tensor`; it must
        read the current data of ``inputs`` each time it is called.
    inputs:
        Leaf tensors with ``requires_grad=True`` to check.

    Raises
    ------
    AssertionError
        If any analytic gradient deviates beyond the tolerances.
    """
    for t in inputs:
        if not t.requires_grad:
            raise ValueError("all checked inputs must require grad")
        t.zero_grad()
    out = fn()
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar output")
    out.backward()
    for idx, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, t, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
    return True
