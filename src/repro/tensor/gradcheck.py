"""Numerical gradient checking for the autograd engine.

``gradcheck`` compares analytic gradients produced by ``Tensor.backward``
against central finite differences.  It is used throughout the test-suite to
validate every layer and loss the reproduction defines.

Tolerances are dtype-aware: the default finite-difference step and the
comparison tolerances are chosen from the widest floating dtype among the
checked inputs, so checks run under the ``float32`` policy don't spuriously
fail from truncation noise (central differences in fp32 carry ~1e-3 error at
a well-chosen step; fp64 supports 1e-6 steps).  Explicit ``eps``/``atol``/
``rtol`` arguments always win.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor

#: per-dtype defaults: (eps, atol, rtol)
_DTYPE_DEFAULTS = {
    np.dtype(np.float64): (1e-6, 1e-5, 1e-4),
    np.dtype(np.float32): (1e-3, 1e-2, 1e-2),
}


def _defaults_for(dtype: np.dtype) -> Tuple[float, float, float]:
    return _DTYPE_DEFAULTS.get(np.dtype(dtype),
                               _DTYPE_DEFAULTS[np.dtype(np.float32)])


def _widest_dtype(inputs: Sequence[Tensor]) -> np.dtype:
    dtypes = [t.data.dtype for t in inputs] or [np.dtype(np.float64)]
    return max(dtypes, key=lambda dt: dt.itemsize)


def numerical_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                       eps: Optional[float] = None) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``eps`` defaults to a step matched to ``tensor``'s dtype (1e-6 for
    float64, 1e-3 for float32).
    """
    if eps is None:
        eps = _defaults_for(tensor.data.dtype)[0]
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[[], Tensor], inputs: Sequence[Tensor],
              eps: Optional[float] = None, atol: Optional[float] = None,
              rtol: Optional[float] = None) -> bool:
    """Verify analytic gradients of scalar ``fn()`` against finite differences.

    Parameters
    ----------
    fn:
        Zero-argument callable returning a scalar :class:`Tensor`; it must
        read the current data of ``inputs`` each time it is called.
    inputs:
        Leaf tensors with ``requires_grad=True`` to check.
    eps, atol, rtol:
        Finite-difference step and comparison tolerances.  ``None`` (the
        default) selects per-dtype values from the widest input dtype:
        ``(1e-6, 1e-5, 1e-4)`` for float64 inputs, ``(1e-3, 1e-2, 1e-2)``
        for float32.

    Raises
    ------
    AssertionError
        If any analytic gradient deviates beyond the tolerances.
    """
    d_eps, d_atol, d_rtol = _defaults_for(_widest_dtype(inputs))
    eps = d_eps if eps is None else eps
    atol = d_atol if atol is None else atol
    rtol = d_rtol if rtol is None else rtol
    for t in inputs:
        if not t.requires_grad:
            raise ValueError("all checked inputs must require grad")
        t.zero_grad()
    out = fn()
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar output")
    out.backward()
    for idx, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, t, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
    return True
