"""repro — reproduction of "Relational Temporal Graph Convolutional
Networks for Ranking-Based Stock Prediction" (Zheng et al., ICDE 2023).

The package is layered bottom-up:

- :mod:`repro.tensor` — NumPy reverse-mode autodiff (PyTorch stand-in);
- :mod:`repro.nn` / :mod:`repro.optim` — layers and optimizers;
- :mod:`repro.graph` — relation matrices, G_RT, the three relation-aware
  strategies (Eqs. 3–5);
- :mod:`repro.data` — factor-model market simulator, relation generators,
  feature pipeline, market presets;
- :mod:`repro.core` — the RT-GCN model, losses (Eqs. 7–9), trainer;
- :mod:`repro.baselines` — the 11 comparison models of Table IV/V;
- :mod:`repro.eval` — MRR/IRR metrics, backtester, indices, the 15-run
  protocol, speed measurement, the Figure-8 case study;
- :mod:`repro.stats` — Wilcoxon signed-rank tests;
- :mod:`repro.ckpt` — fault-tolerant training state: atomic checksummed
  checkpoints, keep-last-k retention, bitwise-identical resume, fault
  injection (see docs/checkpointing.md);
- :mod:`repro.obs` — profiler, tracer, and JSON run telemetry.

Quickstart
----------
>>> from repro import load_market, RTGCN, Trainer, TrainConfig
>>> from repro.eval import ranking_metrics
>>> dataset = load_market("nasdaq-mini", seed=0)
>>> model = RTGCN(dataset.relations, strategy="time")
>>> result = Trainer(model, dataset, TrainConfig(epochs=5)).run()
>>> ranking_metrics(result.predictions, result.actuals)    # doctest: +SKIP
"""

from .ckpt import (CheckpointCallback, CheckpointManager,
                   TrainingCheckpoint)
from .core import RTGCN, TrainConfig, Trainer, TrainResult
from .data import available_markets, load_market
from .graph import RelationMatrix, RelationTemporalGraph
from .io import load_checkpoint, save_checkpoint

__version__ = "1.0.0"

__all__ = [
    "RTGCN", "Trainer", "TrainConfig", "TrainResult",
    "load_market", "available_markets",
    "RelationMatrix", "RelationTemporalGraph",
    "save_checkpoint", "load_checkpoint",
    "TrainingCheckpoint", "CheckpointManager", "CheckpointCallback",
    "__version__",
]
