"""The paper's primary contribution: RT-GCN, its losses and trainer."""

from .callbacks import CallbackList, ProgressCallback, TrainerCallback
from .losses import combined_loss, l2_penalty, ranking_loss, regression_loss
from .model import RTGCN, RTGCNLayer
from .relational import RelationalGraphConvolution
from .temporal import TemporalConvolution
from .trainer import (NonFiniteLossError, TrainConfig, Trainer,
                      TrainResult)

__all__ = [
    "RTGCN", "RTGCNLayer", "RelationalGraphConvolution",
    "TemporalConvolution",
    "regression_loss", "ranking_loss", "combined_loss", "l2_penalty",
    "Trainer", "TrainConfig", "TrainResult", "NonFiniteLossError",
    "TrainerCallback", "CallbackList", "ProgressCallback",
]
