"""Loss functions of paper §IV-D (Eqs. 7–9).

- :func:`regression_loss` — τ_reg, the squared error between predicted and
  true return ratios.
- :func:`ranking_loss` — τ_rank, the pairwise hinge that penalizes every
  stock pair whose predicted order contradicts the true order.
- :func:`combined_loss` — τ = τ_reg + α·τ_rank + λ‖β‖².

Both τ terms are *averaged* (over stocks / over ordered pairs) rather than
summed so that the balancing parameter α has a scale independent of the
universe size — Feng et al.'s released RSR code does the same, and the
paper's α grid (0…0.5) only makes sense under this convention.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..tensor import Tensor, ensure_tensor

__all__ = ["regression_loss", "ranking_loss", "combined_loss",
           "l2_penalty"]


def regression_loss(predicted: Tensor, actual: Tensor) -> Tensor:
    """Eq. (7): mean squared error between score and true return ratio."""
    predicted = ensure_tensor(predicted)
    actual = ensure_tensor(actual)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs "
                         f"{actual.shape}")
    diff = predicted - actual
    return (diff * diff).mean()


def ranking_loss(predicted: Tensor, actual: Tensor) -> Tensor:
    """Eq. (8): pairwise ranking-aware hinge.

    ``ReLU(-(r̂_i − r̂_j)(r_i − r_j))`` over all ordered pairs ``(i, j)``;
    the penalty is positive exactly when the predicted order of a pair
    disagrees with the true order, and proportional to both margins.
    """
    predicted = ensure_tensor(predicted)
    actual = ensure_tensor(actual)
    if predicted.ndim != 1 or actual.ndim != 1:
        raise ValueError("ranking loss expects 1-D score vectors, got "
                         f"{predicted.shape} and {actual.shape}")
    n = predicted.shape[0]
    if n < 2:
        return (predicted * 0.0).sum()
    pred_diff = predicted.unsqueeze(1) - predicted.unsqueeze(0)
    true_diff = ensure_tensor(actual.data[:, None] - actual.data[None, :])
    hinge = (-(pred_diff * true_diff)).relu()
    return hinge.sum() * (1.0 / (n * (n - 1)))


def l2_penalty(parameters: Iterable[Tensor]) -> Tensor:
    """‖β‖²: the summed squared norm of all learnable parameters."""
    total: Optional[Tensor] = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("no parameters supplied to l2_penalty")
    return total


def combined_loss(predicted: Tensor, actual: Tensor, alpha: float,
                  parameters: Optional[Iterable[Tensor]] = None,
                  weight_decay: float = 0.0) -> Tensor:
    """Eq. (9): τ = τ_reg + α·τ_rank + λ‖β‖²."""
    loss = regression_loss(predicted, actual)
    if alpha:
        loss = loss + alpha * ranking_loss(predicted, actual)
    if weight_decay and parameters is not None:
        loss = loss + weight_decay * l2_penalty(parameters)
    return loss
