"""RT-GCN: the paper's primary contribution (§IV, Figure 3).

A stack of relation-temporal graph convolution layers — each a relational
graph convolution (Eq. 2 with one of the three relation-aware strategies)
followed by a causal temporal convolution (Eq. 6) — then average pooling
over the remaining temporal dimension and a fully connected scorer.  Given
the window features ``X ∈ R^{T×N×D}`` of every stock, the model emits one
ranking score per stock; higher score = higher expected next-day return.

The Table VII ablations are the same class with one side disabled:
``RTGCN.r_conv(...)`` keeps only the relational convolution, and
``RTGCN.t_conv(...)`` keeps only the temporal convolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import RelationMatrix, make_strategy
from ..nn import Linear
from ..nn.module import Module
from ..tensor import Tensor, ensure_tensor
from .relational import RelationalGraphConvolution
from .temporal import TemporalConvolution


class RTGCNLayer(Module):
    """One relation-temporal convolution layer.

    Input ``(T, N, C_in)`` flows through the relational convolution (when
    enabled) and then the temporal convolution (when enabled), producing
    ``(H, N, C_out)``.
    """

    def __init__(self, relations: RelationMatrix, in_channels: int,
                 out_channels: int, strategy: str = "time",
                 temporal_kernel: int = 3, temporal_stride: int = 1,
                 dropout: float = 0.1, use_relational: bool = True,
                 use_temporal: bool = True, graph_mode: str = "auto",
                 density_threshold: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not use_relational and not use_temporal:
            raise ValueError("layer must keep at least one of the relational "
                             "and temporal convolutions")
        self.use_relational = use_relational
        self.use_temporal = use_temporal
        mid = out_channels if use_relational else in_channels
        if use_relational:
            self.relational = RelationalGraphConvolution(
                make_strategy(strategy, relations, rng=rng,
                              graph_mode=graph_mode,
                              density_threshold=density_threshold),
                in_channels, out_channels, rng=rng)
        else:
            self.relational = None
        if use_temporal:
            self.temporal = TemporalConvolution(
                mid, out_channels, kernel_size=temporal_kernel,
                stride=temporal_stride, dropout=dropout, rng=rng)
        else:
            self.temporal = None

    def forward(self, x: Tensor) -> Tensor:
        if self.relational is not None:
            x = self.relational(x)
        if self.temporal is not None:
            x = self.temporal(x)
        return x


class RTGCN(Module):
    """Relation-temporal graph convolutional network for stock ranking.

    Parameters
    ----------
    relations:
        The multi-hot relation matrix 𝓐 of the stock universe.
    num_features:
        Node feature dimension ``D`` (close + moving averages; Table VIII).
    strategy:
        Relation-aware strategy: ``"uniform"``/``"weight"``/``"time"``
        (paper's U/W/T variants).
    relational_filters:
        ``F``, the width of the relational convolution.
    temporal_kernel, temporal_stride:
        The causal filter of Eq. (6); stride > 1 compresses time.
    num_layers:
        Number of stacked RT-GCN layers (the paper uses 1: "too many layers
        could cause overfitting", §V-B-4).
    dropout:
        Spatial dropout inside each temporal block.
    use_relational / use_temporal:
        Ablation switches (Table VII's R-Conv / T-Conv).
    graph_mode / density_threshold:
        Dense/sparse dispatch of the relational propagation
        (``"auto"``/``"dense"``/``"sparse"``; see ``docs/performance.md``).
    """

    def __init__(self, relations: RelationMatrix, num_features: int = 4,
                 strategy: str = "time", relational_filters: int = 32,
                 temporal_kernel: int = 3, temporal_stride: int = 1,
                 num_layers: int = 1, dropout: float = 0.05,
                 use_relational: bool = True, use_temporal: bool = True,
                 graph_mode: str = "auto",
                 density_threshold: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.relations = relations
        self.num_features = num_features
        self.strategy_name = strategy
        self.num_layers = num_layers
        width = relational_filters
        in_channels = num_features
        for index in range(num_layers):
            layer = RTGCNLayer(relations, in_channels, width,
                               strategy=strategy,
                               temporal_kernel=temporal_kernel,
                               temporal_stride=temporal_stride,
                               dropout=dropout,
                               use_relational=use_relational,
                               use_temporal=use_temporal,
                               graph_mode=graph_mode,
                               density_threshold=density_threshold, rng=rng)
            self.add_module(f"layer{index}", layer)
            # Whichever convolutions a layer keeps, its output width is
            # `relational_filters`.
            in_channels = width
        self.scorer = Linear(width, 1, rng=rng)

    # ------------------------------------------------------------------
    # ablation constructors (Table VII)
    # ------------------------------------------------------------------
    @classmethod
    def r_conv(cls, relations: RelationMatrix, **kwargs) -> "RTGCN":
        """R-Conv: relational convolution only, uniform strategy (§V-D-2)."""
        kwargs.setdefault("strategy", "uniform")
        return cls(relations, use_relational=True, use_temporal=False,
                   **kwargs)

    @classmethod
    def t_conv(cls, relations: RelationMatrix, **kwargs) -> "RTGCN":
        """T-Conv: temporal convolution only (§V-D-2)."""
        return cls(relations, use_relational=False, use_temporal=True,
                   **kwargs)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Score every stock from window features ``(T, N, D)`` → ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) features, got {x.shape}")
        if x.shape[2] != self.num_features:
            raise ValueError(f"model built for D={self.num_features} "
                             f"features, got {x.shape[2]}")
        for index in range(self.num_layers):
            x = self._modules[f"layer{index}"](x)
        pooled = x.mean(axis=0)          # average pooling over time: (N, F)
        return self.scorer(pooled).squeeze(-1)

    def __repr__(self) -> str:
        return (f"RTGCN(strategy={self.strategy_name!r}, "
                f"layers={self.num_layers}, "
                f"params={self.num_parameters()})")
