"""Relational graph convolution over the relation-temporal graph (§IV-B).

Applies Kipf's first-order GCN (Eq. 2) to every relational graph G_R in
G_RT.  The adjacency is produced by one of the three relation-aware
strategies; for the uniform and weight strategies a single ``(N, N)``
adjacency is shared across time-steps (broadcast through the batched
matmul), while the time-sensitive strategy supplies a ``(T, N, N)`` stack.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import RelationStrategy
from ..nn import GraphConv, Linear
from ..nn.module import Module
from ..tensor import Tensor, ensure_tensor


class RelationalGraphConvolution(Module):
    """One relational-convolution step of an RT-GCN layer.

    ``forward(x)`` with ``x`` of shape ``(T, N, D)`` returns ``(T, N, F)``
    where ``F`` is the number of relational convolution filters.

    A linear residual path around the graph convolution (as in the ST-GCN
    blocks of Yan et al., the architecture §IV-C builds on) lets each
    stock keep its *own* temporal signal undiluted while the propagation
    term adds neighbor information on top; without it the degree
    normalization shrinks the self-contribution of well-connected stocks.
    """

    def __init__(self, strategy: RelationStrategy, in_features: int,
                 out_features: int, residual: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.strategy = strategy
        self.conv = GraphConv(in_features, out_features, rng=rng)
        self.skip = Linear(in_features, out_features, bias=False,
                           rng=rng) if residual else None
        if residual:
            # Start the block near the identity (skip) function: a small
            # propagation term lets optimization *grow* relational usage
            # where neighbors carry signal instead of having to suppress
            # initial propagation noise — the zero-init trick of modern
            # residual architectures.
            self.conv.weight.data *= 0.1
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        adjacency = self.strategy(x) if self.strategy.time_varying \
            else self.strategy()
        propagated = self.conv(x, adjacency)
        if self.skip is not None:
            propagated = propagated + self.skip(x)
        return propagated.relu()

    def __repr__(self) -> str:
        return (f"RelationalGraphConvolution("
                f"strategy={type(self.strategy).__name__}, "
                f"in={self.in_features}, out={self.out_features})")
