"""Trainer event API: the :class:`TrainerCallback` protocol.

The Trainer used to accept a bare ``Callable[[int, float], None]`` progress
hook, which could not observe batches or the end of a fit.  Callbacks
replace it: subclass :class:`TrainerCallback`, override any subset of the
four events, and pass instances to :meth:`Trainer.fit`.

Event order for a fit of ``E`` epochs over ``B`` training days::

    on_epoch_start(trainer, 0)
      on_batch_end(trainer, 0, day, loss)   x B
    on_epoch_end(trainer, 0, mean_loss)
    ... (repeated per epoch; early stopping may cut the sequence short)
    on_fit_end(trainer, losses)             exactly once

Callbacks observe; they do not steer — early stopping stays a
``TrainConfig`` concern so a misbehaving observer cannot change training
results.  The observability layer builds on this protocol: see
:class:`repro.obs.TelemetryCallback`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence


class TrainerCallback:
    """Base class / protocol for trainer event observers.

    Every hook has a no-op default, so subclasses override only the events
    they care about.  Any object with the same four methods also works —
    the Trainer calls them duck-typed.
    """

    def on_epoch_start(self, trainer, epoch: int) -> None:
        """Called before the first batch of ``epoch``."""

    def on_batch_end(self, trainer, epoch: int, day: int,
                     loss: float) -> None:
        """Called after the optimiser step for one training day."""

    def on_epoch_end(self, trainer, epoch: int, mean_loss: float) -> None:
        """Called after every batch of ``epoch`` (the early-stopping
        validation pass has already updated the trainer's best state, so
        a checkpoint taken here is current)."""

    def on_fit_end(self, trainer, losses: List[float]) -> None:
        """Called exactly once when the fit finishes (however it ends)."""


class CallbackList(TrainerCallback):
    """Fans each event out to a sequence of callbacks, in order."""

    def __init__(self, callbacks: Sequence[TrainerCallback] = ()):
        self.callbacks = list(callbacks)

    def on_epoch_start(self, trainer, epoch: int) -> None:
        for cb in self.callbacks:
            cb.on_epoch_start(trainer, epoch)

    def on_batch_end(self, trainer, epoch: int, day: int,
                     loss: float) -> None:
        for cb in self.callbacks:
            cb.on_batch_end(trainer, epoch, day, loss)

    def on_epoch_end(self, trainer, epoch: int, mean_loss: float) -> None:
        for cb in self.callbacks:
            cb.on_epoch_end(trainer, epoch, mean_loss)

    def on_fit_end(self, trainer, losses: List[float]) -> None:
        for cb in self.callbacks:
            cb.on_fit_end(trainer, losses)


class ProgressCallback(TrainerCallback):
    """Adapter for the legacy ``progress(epoch, mean_loss)`` callable."""

    def __init__(self, fn: Callable[[int, float], None]):
        self.fn = fn

    def on_epoch_end(self, trainer, epoch: int, mean_loss: float) -> None:
        self.fn(epoch, mean_loss)
