"""Shared training harness for ranking/regression stock models.

Implements the paper's protocol (§V-B-4): Adam with lr = 0.001, the
combined loss of Eq. (9) with λ = 0.01, full-universe batches (one training
sample = one trading day's graph), and grid-searchable window size ``T`` and
balancing parameter α.  The same harness trains RT-GCN and every
gradient-based baseline, which is what makes the Figure 5 speed comparison
apples-to-apples.

The fit loop is fault-tolerant: its entire mutable state (epoch/batch
cursor, shuffle order, RNG streams, early-stopping bests) lives in one
:class:`_FitState` record, so :meth:`Trainer.state_dict` can capture a
:class:`~repro.ckpt.TrainingCheckpoint` at any batch boundary and
:meth:`Trainer.fit` with ``resume_from=`` continues a killed run
bitwise-identically to the uninterrupted one (see docs/checkpointing.md).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..data import StockDataset
from ..nn.graph import set_graph_mode
from ..nn.module import Module
from ..nn.random import get_rng
from ..obs.tracer import trace
from ..optim import Adam, clip_grad_norm_
from ..tensor import (Tensor, arena, default_dtype, dtype_policy,
                      fused_kernels, no_grad)
from .callbacks import CallbackList, ProgressCallback, TrainerCallback
from .losses import combined_loss

#: TrainConfig fields allowed to differ between a checkpoint and the
#: resuming trainer (anything else changes the training trajectory and
#: would silently break bitwise resume).
_RESUME_EXEMPT_FIELDS = ("epochs",)


class NonFiniteLossError(RuntimeError):
    """Raised when a batch loss goes NaN/Inf and the policy is ``raise``
    (or recovery is exhausted under ``rollback``)."""


@dataclass
class TrainConfig:
    """Hyperparameters of a training run (defaults follow §V-B-4)."""

    window: int = 15               # T, grid {5, 10, 15, 20} in Fig. 7
    num_features: int = 4          # Table VIII feature combination
    alpha: float = 0.1             # loss balance, grid {0.01, 0.1, 0.2}
    # λ of Eq. (9).  The paper reports λ = 0.01 with sum-form losses; our
    # losses are means (per stock / per pair), so the equivalent decay is
    # smaller by roughly the universe size — 0.01 would dwarf the ~1e-4
    # scale of the MSE term and shrink every weight to zero.
    weight_decay: float = 1e-6
    learning_rate: float = 1e-3
    epochs: int = 10
    grad_clip: float = 5.0
    shuffle: bool = True
    seed: int = 0
    # Graph propagation backend: "auto" respects each module's own setting
    # (density-based dispatch by default); "dense"/"sparse" force the
    # backend on every graph module of the model (see docs/performance.md).
    graph_mode: str = "auto"
    max_train_days: Optional[int] = None   # subsample for quick experiments
    # Early stopping: when patience is set, the last `validation_days` of
    # the training period are held out, the validation loss is evaluated
    # after every epoch, and training stops after `patience` epochs without
    # improvement (the best parameters are restored).
    early_stopping_patience: Optional[int] = None
    validation_days: int = 20
    # What to do when a batch loss is NaN/Inf: "raise" aborts with
    # NonFiniteLossError, "ignore" keeps the old propagate-silently
    # behavior, "rollback" restores the last good checkpoint (requires a
    # CheckpointCallback), halves the learning rate, and retries — at
    # most `max_rollbacks` times before raising.
    nan_policy: str = "raise"
    max_rollbacks: int = 3
    # Numerics (see docs/performance.md): the dtype policy active for the
    # whole run ("float64", "float32", or "mixed" — fp32 storage with fp64
    # accumulation in reductions), whether the fused autograd kernels are
    # used (bitwise-equal to the composed ops under float64), and whether
    # backward temporaries are recycled through the buffer arena.
    dtype_policy: str = "float64"
    fused_kernels: bool = True
    buffer_arena: bool = False
    # Intra-run data parallelism (see docs/distributed.md): 0 disables
    # (plain serial loop), N >= 1 runs the repro.dist fit loop with N
    # worker processes (1 = inline, the serial numerical reference;
    # negative = one per CPU).  `dist_days_per_step` is how many days of
    # the schedule one optimizer step consumes under that loop; it is
    # part of the numerics (it changes the effective batch size), so it
    # is a config knob and never derived from the worker count.
    dist_workers: int = 0
    dist_days_per_step: int = 4


@dataclass
class TrainResult:
    """Everything an experiment needs from one trained model."""

    epoch_losses: List[float]
    train_seconds: float
    test_seconds: float
    test_days: List[int]
    predictions: np.ndarray        # (num_test_days, num_stocks) scores
    actuals: np.ndarray            # (num_test_days, num_stocks) true returns
    extras: dict = field(default_factory=dict)


@dataclass
class _FitState:
    """The fit loop's complete mutable state (what a checkpoint captures).

    ``epoch`` is the epoch currently in progress; ``day_order`` is that
    epoch's shuffled schedule (``None`` between epochs) and
    ``batch_index`` counts its already-applied batches, so a checkpoint
    taken mid-epoch resumes at exactly the next day of the same order.
    """

    rng: np.random.Generator
    epoch: int = 0
    batch_index: int = 0
    day_order: Optional[List[int]] = None
    epoch_loss: float = 0.0
    losses: List[float] = field(default_factory=list)
    best_val: float = float("inf")
    best_state: Optional[Dict[str, np.ndarray]] = None
    bad_epochs: int = 0


class Trainer:
    """Trains a scoring model ``X (T,N,D) → scores (N,)`` on a dataset."""

    def __init__(self, model: Module, dataset: StockDataset,
                 config: Optional[TrainConfig] = None,
                 loss_fn: Optional[Callable] = None,
                 train_days: Optional[Sequence[int]] = None):
        """``loss_fn(scores, labels, parameters)`` may replace Eq. (9);
        the default is the paper's combined loss.  ``train_days`` overrides
        the dataset's chronological training split (used by grid search to
        hold out a validation tail)."""
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else TrainConfig()
        if self.config.nan_policy not in ("raise", "ignore", "rollback"):
            raise ValueError(f"nan_policy must be 'raise', 'ignore' or "
                             f"'rollback', got {self.config.nan_policy!r}")
        if self.config.graph_mode != "auto":
            # Force the configured backend onto every graph module; "auto"
            # leaves the model's own (density-dispatched) modes untouched.
            set_graph_mode(model, self.config.graph_mode)
        # Cast the model to the policy's storage dtype up front (also
        # validates the policy name).  Adam state is allocated lazily with
        # ``zeros_like(param.data)``, so it follows automatically.
        with dtype_policy(self.config.dtype_policy):
            model.astype(default_dtype())
        self.loss_fn = loss_fn
        self.train_days_override = (list(train_days)
                                    if train_days is not None else None)
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)
        self._fit_state: Optional[_FitState] = None
        # Live repro.dist ShardExecutor while a distributed fit is in
        # flight (fault-injection hooks and tests reach workers through
        # it); None otherwise.
        self.dist_executor = None

    # ------------------------------------------------------------------
    # day bookkeeping
    # ------------------------------------------------------------------
    def _training_days(self) -> Tuple[List[int], List[int]]:
        """``(train_days, validation_days)`` after every config filter."""
        cfg = self.config
        if self.train_days_override is not None:
            train_days = list(self.train_days_override)
        else:
            split_days, _ = self.dataset.split(cfg.window)
            train_days = list(split_days)
        if cfg.max_train_days is not None:
            train_days = train_days[-cfg.max_train_days:]
        validation_days: List[int] = []
        if cfg.early_stopping_patience is not None:
            if cfg.validation_days <= 0:
                raise ValueError("early stopping requires validation_days "
                                 "> 0")
            if cfg.validation_days >= len(train_days):
                raise ValueError(f"validation_days={cfg.validation_days} "
                                 f"exhausts the {len(train_days)}-day "
                                 "training period")
            validation_days = train_days[-cfg.validation_days:]
            train_days = train_days[:-cfg.validation_days]
        return train_days, validation_days

    # ------------------------------------------------------------------
    # checkpoint state (the uniform state-dict contract)
    # ------------------------------------------------------------------
    def _named_rngs(self) -> List[Tuple[str, np.random.Generator]]:
        """Distinct RNGs owned by the model's modules, by dotted name.

        Dropout layers draw from their construction-time generator during
        training; restoring these streams is what keeps a resumed run's
        masks identical to the uninterrupted run's.
        """
        seen: Dict[int, Tuple[str, np.random.Generator]] = {}
        for name, module in self.model.named_modules():
            gen = getattr(module, "_rng", None)
            if isinstance(gen, np.random.Generator) and id(gen) not in seen:
                seen[id(gen)] = (name or "<root>", gen)
        return list(seen.values())

    def state_dict(self) -> "Any":
        """A :class:`~repro.ckpt.TrainingCheckpoint` of the whole run.

        Captures model parameters, full optimizer state, every RNG stream
        (shuffle, library-global, per-module dropout), the epoch/batch
        cursor, early-stopping state, and the ``TrainConfig``.  Valid at
        any batch boundary; between fits it describes a run about to
        start (or just finished).
        """
        from ..ckpt.checkpoint import TrainingCheckpoint, rng_state

        state = self._fit_state
        if state is None:
            state = self._fit_state = _FitState(
                rng=np.random.default_rng(self.config.seed))
        rngs: Dict[str, Any] = {"shuffle": rng_state(state.rng),
                                "global": rng_state(get_rng())}
        for name, gen in self._named_rngs():
            rngs[f"module:{name}"] = rng_state(gen)
        return TrainingCheckpoint(
            model_state=self.model.state_dict(),
            optimizer_state=self.optimizer.state_dict(),
            rng=rngs,
            cursor={"epoch": state.epoch,
                    "batch_index": state.batch_index,
                    "day_order": state.day_order,
                    "epoch_loss": state.epoch_loss,
                    "losses": list(state.losses)},
            early_stopping={"best_val": state.best_val,
                            "bad_epochs": state.bad_epochs},
            best_model_state=state.best_state,
            config=asdict(self.config),
            model_class=type(self.model).__name__)

    def load_state_dict(self, checkpoint: "Any") -> None:
        """Restore a :class:`~repro.ckpt.TrainingCheckpoint` into this
        trainer: parameters, optimizer, RNG streams, and the fit cursor.

        The checkpoint's ``TrainConfig`` must match this trainer's on
        every field except ``epochs`` (extending a finished run is fine);
        a mismatch raises :class:`~repro.ckpt.CheckpointError` because it
        would silently change the training trajectory.
        """
        from ..ckpt.checkpoint import (CheckpointError, restore_rng)

        if checkpoint.format_version < 2:
            raise CheckpointError(
                "cannot resume from a format-v1 (parameters-only) "
                "checkpoint: it has no optimizer/RNG/cursor state; load "
                "it with repro.io.load_checkpoint instead")
        if checkpoint.model_class and \
                checkpoint.model_class != type(self.model).__name__:
            raise CheckpointError(
                f"checkpoint holds a {checkpoint.model_class}, trainer "
                f"model is a {type(self.model).__name__}")
        if checkpoint.config:
            own = asdict(self.config)
            for key, value in checkpoint.config.items():
                if key in _RESUME_EXEMPT_FIELDS or key not in own:
                    continue
                if own[key] != value:
                    raise CheckpointError(
                        f"checkpoint config has {key}={value!r} but the "
                        f"trainer uses {key}={own[key]!r}; resuming would "
                        "not reproduce the original run — recreate the "
                        "trainer with the checkpoint's config")
        self.model.load_state_dict(checkpoint.model_state)
        if checkpoint.optimizer_state:
            self.optimizer.load_state_dict(checkpoint.optimizer_state)
        state = _FitState(rng=np.random.default_rng(self.config.seed))
        if "shuffle" in checkpoint.rng:
            restore_rng(state.rng, checkpoint.rng["shuffle"])
        if "global" in checkpoint.rng:
            restore_rng(get_rng(), checkpoint.rng["global"])
        module_rngs = dict(self._named_rngs())
        for key, payload in checkpoint.rng.items():
            if key.startswith("module:"):
                name = key[len("module:"):]
                if name in module_rngs:
                    restore_rng(module_rngs[name], payload)
        cursor = checkpoint.cursor
        state.epoch = int(cursor.get("epoch", 0))
        state.batch_index = int(cursor.get("batch_index", 0))
        order = cursor.get("day_order")
        state.day_order = ([int(d) for d in order]
                           if order is not None else None)
        state.epoch_loss = float(cursor.get("epoch_loss", 0.0))
        state.losses = [float(x) for x in cursor.get("losses", [])]
        es = checkpoint.early_stopping
        best_val = es.get("best_val")
        state.best_val = (float(best_val) if best_val is not None
                          else float("inf"))
        state.bad_epochs = int(es.get("bad_epochs", 0))
        state.best_state = (dict(checkpoint.best_model_state)
                            if checkpoint.best_model_state else None)
        self._fit_state = state

    def _resolve_checkpoint(self, ref: "Any") -> "Any":
        """Accept a TrainingCheckpoint, CheckpointManager, directory, or
        file path as a resume source."""
        from pathlib import Path

        from ..ckpt.checkpoint import (CheckpointError, TrainingCheckpoint,
                                       load)
        from ..ckpt.manager import CheckpointManager

        if isinstance(ref, TrainingCheckpoint):
            return ref
        if isinstance(ref, (str, Path)) and Path(ref).is_dir():
            ref = CheckpointManager(ref)
        if isinstance(ref, CheckpointManager):
            checkpoint = ref.latest_valid()
            if checkpoint is None:
                raise CheckpointError(
                    f"no valid checkpoint found in {ref.directory}; "
                    "nothing to resume from — start a fresh fit")
            return checkpoint
        return load(ref)

    # ------------------------------------------------------------------
    def fit(self, callbacks: Optional[Sequence[TrainerCallback]] = None,
            resume_from: "Any" = None) -> List[float]:
        """Run the training epochs; returns the per-epoch mean loss.

        ``callbacks`` receive the :class:`TrainerCallback` events in order:
        ``on_epoch_start``, ``on_batch_end`` per training day,
        ``on_epoch_end``, and a final ``on_fit_end``.  Each phase of the
        inner loop is traced (:mod:`repro.obs`) under ``data_prep`` /
        ``forward`` / ``backward`` / ``optimizer_step`` spans.

        ``resume_from`` continues an interrupted run: pass a
        :class:`~repro.ckpt.TrainingCheckpoint`, a checkpoint file path, a
        checkpoint directory, or a :class:`~repro.ckpt.CheckpointManager`
        (directories/managers resolve to the newest checkpoint that
        passes checksum verification).  A resumed fit replays nothing and
        skips nothing: per-epoch losses are bitwise-identical to the run
        that was never interrupted.

        The whole loop runs under the config's numerics settings:
        ``dtype_policy`` (activated as the thread's dtype policy),
        ``fused_kernels``, and — when ``buffer_arena`` is set — the
        backward buffer arena.

        With ``dist_workers`` non-zero the fit is delegated to the
        :mod:`repro.dist` data-parallel loop (same callbacks, same
        events; see :func:`repro.dist.fit_distributed` for its two
        restrictions).
        """
        cfg = self.config
        if cfg.dist_workers:
            from ..dist.trainer import fit_distributed
            return fit_distributed(self, callbacks=callbacks,
                                   resume_from=resume_from)
        with dtype_policy(cfg.dtype_policy), \
                fused_kernels(cfg.fused_kernels):
            if cfg.buffer_arena:
                with arena():
                    return self._fit_loop(callbacks, resume_from)
            return self._fit_loop(callbacks, resume_from)

    def _fit_loop(self, callbacks: Optional[Sequence[TrainerCallback]],
                  resume_from: "Any") -> List[float]:
        cfg = self.config
        events = CallbackList(callbacks or ())
        train_days, validation_days = self._training_days()
        if resume_from is not None:
            self.load_state_dict(self._resolve_checkpoint(resume_from))
        else:
            # A fresh fit always restarts from epoch 0 (matching the
            # historical contract); only resume_from continues a run.
            self._fit_state = _FitState(rng=np.random.default_rng(cfg.seed))
        state = self._fit_state
        anchor = self._rollback_anchor(callbacks or ())
        rollbacks = 0
        self.model.train()
        params = list(self.model.parameters())
        while state.epoch < cfg.epochs:
            epoch = state.epoch
            if state.day_order is None:
                order = np.array(train_days)
                if cfg.shuffle:
                    state.rng.shuffle(order)
                state.day_order = [int(d) for d in order]
                state.batch_index = 0
                state.epoch_loss = 0.0
            if state.batch_index == 0:
                events.on_epoch_start(self, epoch)
            order_days = state.day_order
            rolled_back = False
            with trace("epoch"):
                index = state.batch_index
                while index < len(order_days):
                    day = order_days[index]
                    with trace("data_prep"):
                        features = self.dataset.features(int(day),
                                                         cfg.window,
                                                         cfg.num_features)
                        label = self.dataset.label(int(day))
                    self.optimizer.zero_grad()
                    with trace("forward"):
                        scores = self.model(Tensor(features))
                        if self.loss_fn is not None:
                            loss = self.loss_fn(scores, Tensor(label),
                                                params)
                        else:
                            loss = combined_loss(
                                scores, Tensor(label), cfg.alpha,
                                parameters=params,
                                weight_decay=cfg.weight_decay)
                    batch_loss = loss.item()
                    if not np.isfinite(batch_loss):
                        rollbacks += 1
                        if self._handle_non_finite(batch_loss, epoch,
                                                   int(day), anchor,
                                                   rollbacks):
                            state = self._fit_state
                            rolled_back = True
                            break
                    with trace("backward"):
                        loss.backward()
                    with trace("optimizer_step"):
                        if cfg.grad_clip:
                            clip_grad_norm_(params, cfg.grad_clip)
                        self.optimizer.step()
                    state.epoch_loss += batch_loss
                    index += 1
                    state.batch_index = index
                    events.on_batch_end(self, epoch, int(day), batch_loss)
            if rolled_back:
                continue
            mean_loss = state.epoch_loss / max(len(order_days), 1)
            state.losses.append(mean_loss)
            state.day_order = None
            state.batch_index = 0
            state.epoch_loss = 0.0
            state.epoch = epoch + 1
            # Early-stopping bookkeeping runs before on_epoch_end so a
            # checkpoint taken in that event already carries this epoch's
            # best-state update.
            stop = False
            if cfg.early_stopping_patience is not None:
                val_loss = self._validation_loss(validation_days)
                if val_loss < state.best_val:
                    state.best_val = val_loss
                    state.best_state = self.model.state_dict()
                    state.bad_epochs = 0
                else:
                    state.bad_epochs += 1
                    stop = state.bad_epochs >= cfg.early_stopping_patience
            events.on_epoch_end(self, epoch, mean_loss)
            if stop:
                break
        if state.best_state is not None:
            self.model.load_state_dict(state.best_state)
        events.on_fit_end(self, state.losses)
        return state.losses

    def _rollback_anchor(self, callbacks: Sequence[TrainerCallback]):
        """The CheckpointCallback to roll back through, if any is wired."""
        try:
            from ..ckpt.callback import CheckpointCallback
        except ImportError:                     # pragma: no cover
            return None
        for cb in callbacks:
            if isinstance(cb, CheckpointCallback):
                return cb
        return None

    def _handle_non_finite(self, batch_loss: float, epoch: int, day: int,
                           anchor, rollbacks: int) -> bool:
        """Apply ``cfg.nan_policy``; returns True when a rollback was
        performed (the caller restarts its loop from the restored state).
        """
        cfg = self.config
        detail = (f"non-finite loss {batch_loss!r} at epoch {epoch}, "
                  f"day {day}")
        if cfg.nan_policy == "ignore":
            warnings.warn(detail + " (nan_policy='ignore')",
                          RuntimeWarning, stacklevel=3)
            return False
        if cfg.nan_policy == "rollback":
            try:
                checkpoint = (anchor.manager.latest_valid()
                              if anchor is not None else None)
            except Exception as exc:      # every archive corrupt
                raise NonFiniteLossError(
                    detail + f"; nan_policy='rollback' found no usable "
                    f"checkpoint: {exc}") from exc
            if checkpoint is None:
                raise NonFiniteLossError(
                    detail + "; nan_policy='rollback' needs a "
                    "CheckpointCallback with at least one saved "
                    "checkpoint, and none was found")
            if rollbacks > cfg.max_rollbacks:
                raise NonFiniteLossError(
                    detail + f"; gave up after {cfg.max_rollbacks} "
                    "rollbacks — the run is diverging even at reduced "
                    "learning rates")
            self.load_state_dict(checkpoint)
            # Identical state would produce the identical NaN, so nudge
            # the trajectory the conservative way: halve the step size.
            self.optimizer.lr = self.optimizer.lr / 2.0
            warnings.warn(
                detail + f"; rolled back to epoch "
                f"{checkpoint.epoch}/batch {checkpoint.batch_index} and "
                f"halved the learning rate to {self.optimizer.lr:g} "
                f"(rollback {rollbacks}/{cfg.max_rollbacks})",
                RuntimeWarning, stacklevel=3)
            return True
        raise NonFiniteLossError(
            detail + "; inspect gradients/learning rate, or set "
            "nan_policy='rollback' with a CheckpointCallback to recover "
            "automatically")

    def train(self, progress: Optional[Callable[[int, float], None]] = None
              ) -> List[float]:
        """Deprecated alias of :meth:`fit`.

        The ``progress(epoch, mean_loss)`` callable is superseded by the
        :class:`TrainerCallback` protocol; passing one still works but
        warns.  ``train()`` with no argument simply delegates.
        """
        callbacks: List[TrainerCallback] = []
        if progress is not None:
            warnings.warn("Trainer.train(progress=...) is deprecated; pass "
                          "a TrainerCallback to Trainer.fit(callbacks=...) "
                          "instead", DeprecationWarning, stacklevel=2)
            callbacks.append(ProgressCallback(progress))
        return self.fit(callbacks=callbacks)

    def _validation_loss(self, days: Sequence[int]) -> float:
        """Mean combined loss over held-out validation days (no grads)."""
        return self.evaluate(days)["loss"]

    # ------------------------------------------------------------------
    def evaluate(self, days: Optional[Sequence[int]] = None
                 ) -> Dict[str, Union[float, int]]:
        """Mean combined loss of the current model over ``days``.

        ``days`` defaults to the dataset's chronological test split.
        Returns ``{"loss": mean_combined_loss, "num_days": n}``; runs in
        eval mode with gradients disabled and restores train mode after.
        """
        cfg = self.config
        if days is None:
            _, days = self.dataset.split(cfg.window)
        self.model.eval()
        total = 0.0
        with dtype_policy(cfg.dtype_policy), \
                fused_kernels(cfg.fused_kernels), no_grad():
            for day in days:
                with trace("data_prep"):
                    features = self.dataset.features(int(day), cfg.window,
                                                     cfg.num_features)
                    label = self.dataset.label(int(day))
                with trace("inference"):
                    scores = self.model(Tensor(features))
                total += combined_loss(scores, Tensor(label),
                                       cfg.alpha).item()
        self.model.train()
        return {"loss": total / max(len(days), 1), "num_days": len(days)}

    # ------------------------------------------------------------------
    def predict(self, days: Sequence[int]) -> np.ndarray:
        """Score every stock on each requested day: ``(len(days), N)``."""
        cfg = self.config
        self.model.eval()
        rows = []
        with dtype_policy(cfg.dtype_policy), \
                fused_kernels(cfg.fused_kernels), no_grad():
            for day in days:
                with trace("data_prep"):
                    features = self.dataset.features(int(day), cfg.window,
                                                     cfg.num_features)
                with trace("inference"):
                    rows.append(self.model(Tensor(features)).data.copy())
        self.model.train()
        return np.stack(rows, axis=0)

    # ------------------------------------------------------------------
    def run(self, progress: Optional[Callable[[int, float], None]] = None,
            callbacks: Optional[Sequence[TrainerCallback]] = None,
            resume_from: "Any" = None) -> TrainResult:
        """Train, then predict the full test range; timed for Figure 5."""
        cfg = self.config
        all_callbacks: List[TrainerCallback] = list(callbacks or ())
        if progress is not None:
            warnings.warn("Trainer.run(progress=...) is deprecated; pass "
                          "callbacks=[...] instead", DeprecationWarning,
                          stacklevel=2)
            all_callbacks.append(ProgressCallback(progress))
        start = time.perf_counter()
        epoch_losses = self.fit(callbacks=all_callbacks,
                                resume_from=resume_from)
        train_seconds = time.perf_counter() - start

        _, test_days = self.dataset.split(cfg.window)
        start = time.perf_counter()
        predictions = self.predict(test_days)
        test_seconds = time.perf_counter() - start
        actuals = np.stack([self.dataset.label(day) for day in test_days])
        return TrainResult(epoch_losses=epoch_losses,
                           train_seconds=train_seconds,
                           test_seconds=test_seconds,
                           test_days=list(test_days),
                           predictions=predictions, actuals=actuals)
