"""Shared training harness for ranking/regression stock models.

Implements the paper's protocol (§V-B-4): Adam with lr = 0.001, the
combined loss of Eq. (9) with λ = 0.01, full-universe batches (one training
sample = one trading day's graph), and grid-searchable window size ``T`` and
balancing parameter α.  The same harness trains RT-GCN and every
gradient-based baseline, which is what makes the Figure 5 speed comparison
apples-to-apples.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..data import StockDataset
from ..nn.graph import set_graph_mode
from ..nn.module import Module
from ..obs.tracer import trace
from ..optim import Adam, clip_grad_norm_
from ..tensor import Tensor, no_grad
from .callbacks import CallbackList, ProgressCallback, TrainerCallback
from .losses import combined_loss


@dataclass
class TrainConfig:
    """Hyperparameters of a training run (defaults follow §V-B-4)."""

    window: int = 15               # T, grid {5, 10, 15, 20} in Fig. 7
    num_features: int = 4          # Table VIII feature combination
    alpha: float = 0.1             # loss balance, grid {0.01, 0.1, 0.2}
    # λ of Eq. (9).  The paper reports λ = 0.01 with sum-form losses; our
    # losses are means (per stock / per pair), so the equivalent decay is
    # smaller by roughly the universe size — 0.01 would dwarf the ~1e-4
    # scale of the MSE term and shrink every weight to zero.
    weight_decay: float = 1e-6
    learning_rate: float = 1e-3
    epochs: int = 10
    grad_clip: float = 5.0
    shuffle: bool = True
    seed: int = 0
    # Graph propagation backend: "auto" respects each module's own setting
    # (density-based dispatch by default); "dense"/"sparse" force the
    # backend on every graph module of the model (see docs/performance.md).
    graph_mode: str = "auto"
    max_train_days: Optional[int] = None   # subsample for quick experiments
    # Early stopping: when patience is set, the last `validation_days` of
    # the training period are held out, the validation loss is evaluated
    # after every epoch, and training stops after `patience` epochs without
    # improvement (the best parameters are restored).
    early_stopping_patience: Optional[int] = None
    validation_days: int = 20


@dataclass
class TrainResult:
    """Everything an experiment needs from one trained model."""

    epoch_losses: List[float]
    train_seconds: float
    test_seconds: float
    test_days: List[int]
    predictions: np.ndarray        # (num_test_days, num_stocks) scores
    actuals: np.ndarray            # (num_test_days, num_stocks) true returns
    extras: dict = field(default_factory=dict)


class Trainer:
    """Trains a scoring model ``X (T,N,D) → scores (N,)`` on a dataset."""

    def __init__(self, model: Module, dataset: StockDataset,
                 config: Optional[TrainConfig] = None,
                 loss_fn: Optional[Callable] = None,
                 train_days: Optional[Sequence[int]] = None):
        """``loss_fn(scores, labels, parameters)`` may replace Eq. (9);
        the default is the paper's combined loss.  ``train_days`` overrides
        the dataset's chronological training split (used by grid search to
        hold out a validation tail)."""
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else TrainConfig()
        if self.config.graph_mode != "auto":
            # Force the configured backend onto every graph module; "auto"
            # leaves the model's own (density-dispatched) modes untouched.
            set_graph_mode(model, self.config.graph_mode)
        self.loss_fn = loss_fn
        self.train_days_override = (list(train_days)
                                    if train_days is not None else None)
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)

    # ------------------------------------------------------------------
    def fit(self, callbacks: Optional[Sequence[TrainerCallback]] = None
            ) -> List[float]:
        """Run the training epochs; returns the per-epoch mean loss.

        ``callbacks`` receive the :class:`TrainerCallback` events in order:
        ``on_epoch_start``, ``on_batch_end`` per training day,
        ``on_epoch_end``, and a final ``on_fit_end``.  Each phase of the
        inner loop is traced (:mod:`repro.obs`) under ``data_prep`` /
        ``forward`` / ``backward`` / ``optimizer_step`` spans.
        """
        cfg = self.config
        events = CallbackList(callbacks or ())
        if self.train_days_override is not None:
            train_days = list(self.train_days_override)
        else:
            train_days, _ = self.dataset.split(cfg.window)
        if cfg.max_train_days is not None:
            train_days = train_days[-cfg.max_train_days:]
        validation_days: List[int] = []
        if cfg.early_stopping_patience is not None:
            if cfg.validation_days <= 0:
                raise ValueError("early stopping requires validation_days "
                                 "> 0")
            if cfg.validation_days >= len(train_days):
                raise ValueError(f"validation_days={cfg.validation_days} "
                                 f"exhausts the {len(train_days)}-day "
                                 "training period")
            validation_days = train_days[-cfg.validation_days:]
            train_days = train_days[:-cfg.validation_days]
        rng = np.random.default_rng(cfg.seed)
        losses: List[float] = []
        best_val = np.inf
        best_state = None
        bad_epochs = 0
        self.model.train()
        params = list(self.model.parameters())
        for epoch in range(cfg.epochs):
            events.on_epoch_start(self, epoch)
            order = np.array(train_days)
            if cfg.shuffle:
                rng.shuffle(order)
            epoch_loss = 0.0
            with trace("epoch"):
                for day in order:
                    with trace("data_prep"):
                        features = self.dataset.features(int(day),
                                                         cfg.window,
                                                         cfg.num_features)
                        label = self.dataset.label(int(day))
                    self.optimizer.zero_grad()
                    with trace("forward"):
                        scores = self.model(Tensor(features))
                        if self.loss_fn is not None:
                            loss = self.loss_fn(scores, Tensor(label),
                                                params)
                        else:
                            loss = combined_loss(
                                scores, Tensor(label), cfg.alpha,
                                parameters=params,
                                weight_decay=cfg.weight_decay)
                    with trace("backward"):
                        loss.backward()
                    with trace("optimizer_step"):
                        if cfg.grad_clip:
                            clip_grad_norm_(params, cfg.grad_clip)
                        self.optimizer.step()
                    batch_loss = loss.item()
                    epoch_loss += batch_loss
                    events.on_batch_end(self, epoch, int(day), batch_loss)
            mean_loss = epoch_loss / max(len(order), 1)
            losses.append(mean_loss)
            events.on_epoch_end(self, epoch, mean_loss)
            if cfg.early_stopping_patience is not None:
                val_loss = self._validation_loss(validation_days)
                if val_loss < best_val:
                    best_val = val_loss
                    best_state = self.model.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= cfg.early_stopping_patience:
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        events.on_fit_end(self, losses)
        return losses

    def train(self, progress: Optional[Callable[[int, float], None]] = None
              ) -> List[float]:
        """Deprecated alias of :meth:`fit`.

        The ``progress(epoch, mean_loss)`` callable is superseded by the
        :class:`TrainerCallback` protocol; passing one still works but
        warns.  ``train()`` with no argument simply delegates.
        """
        callbacks: List[TrainerCallback] = []
        if progress is not None:
            warnings.warn("Trainer.train(progress=...) is deprecated; pass "
                          "a TrainerCallback to Trainer.fit(callbacks=...) "
                          "instead", DeprecationWarning, stacklevel=2)
            callbacks.append(ProgressCallback(progress))
        return self.fit(callbacks=callbacks)

    def _validation_loss(self, days: Sequence[int]) -> float:
        """Mean combined loss over held-out validation days (no grads)."""
        return self.evaluate(days)["loss"]

    # ------------------------------------------------------------------
    def evaluate(self, days: Optional[Sequence[int]] = None
                 ) -> Dict[str, Union[float, int]]:
        """Mean combined loss of the current model over ``days``.

        ``days`` defaults to the dataset's chronological test split.
        Returns ``{"loss": mean_combined_loss, "num_days": n}``; runs in
        eval mode with gradients disabled and restores train mode after.
        """
        cfg = self.config
        if days is None:
            _, days = self.dataset.split(cfg.window)
        self.model.eval()
        total = 0.0
        with no_grad():
            for day in days:
                with trace("data_prep"):
                    features = self.dataset.features(int(day), cfg.window,
                                                     cfg.num_features)
                    label = self.dataset.label(int(day))
                with trace("inference"):
                    scores = self.model(Tensor(features))
                total += combined_loss(scores, Tensor(label),
                                       cfg.alpha).item()
        self.model.train()
        return {"loss": total / max(len(days), 1), "num_days": len(days)}

    # ------------------------------------------------------------------
    def predict(self, days: Sequence[int]) -> np.ndarray:
        """Score every stock on each requested day: ``(len(days), N)``."""
        cfg = self.config
        self.model.eval()
        rows = []
        with no_grad():
            for day in days:
                with trace("data_prep"):
                    features = self.dataset.features(int(day), cfg.window,
                                                     cfg.num_features)
                with trace("inference"):
                    rows.append(self.model(Tensor(features)).data.copy())
        self.model.train()
        return np.stack(rows, axis=0)

    # ------------------------------------------------------------------
    def run(self, progress: Optional[Callable[[int, float], None]] = None,
            callbacks: Optional[Sequence[TrainerCallback]] = None
            ) -> TrainResult:
        """Train, then predict the full test range; timed for Figure 5."""
        cfg = self.config
        all_callbacks: List[TrainerCallback] = list(callbacks or ())
        if progress is not None:
            warnings.warn("Trainer.run(progress=...) is deprecated; pass "
                          "callbacks=[...] instead", DeprecationWarning,
                          stacklevel=2)
            all_callbacks.append(ProgressCallback(progress))
        start = time.perf_counter()
        epoch_losses = self.fit(callbacks=all_callbacks)
        train_seconds = time.perf_counter() - start

        _, test_days = self.dataset.split(cfg.window)
        start = time.perf_counter()
        predictions = self.predict(test_days)
        test_seconds = time.perf_counter() - start
        actuals = np.stack([self.dataset.label(day) for day in test_days])
        return TrainResult(epoch_losses=epoch_losses,
                           train_seconds=train_seconds,
                           test_seconds=test_seconds,
                           test_days=list(test_days),
                           predictions=predictions, actuals=actuals)
