"""Temporal convolution step of an RT-GCN layer (§IV-C).

Treats the stocks as the batch axis and runs the causal TCN block over the
time axis, compressing ``T`` steps into ``H`` (via stride) while mixing
channels — "an output at time t is convolved only with elements from time t
and earlier" (Figure 4), so no future leaks into any representation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import TemporalBlock
from ..nn.module import Module
from ..tensor import Tensor, ensure_tensor


class TemporalConvolution(Module):
    """Causal temporal convolution over ``(T, N, C)`` node features.

    Parameters
    ----------
    in_channels, out_channels:
        Feature width before/after the block.
    kernel_size, stride, dilation:
        The Eq. (6) filter; stride > 1 compresses the temporal dimension
        ("we change the filter moving strides to expand the receptive
        field").
    dropout:
        Spatial dropout applied inside the residual block.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int = 3, stride: int = 1, dilation: int = 1,
                 dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.block = TemporalBlock(in_channels, out_channels,
                                   kernel_size=kernel_size, stride=stride,
                                   dilation=dilation, dropout=dropout,
                                   rng=rng)
        self.in_channels = in_channels
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        """``(T, N, C_in) -> (H, N, C_out)`` with ``H = ceil(T / stride)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, C) input, got {x.shape}")
        # (T, N, C) -> (N, C, T): stocks become the batch for the 1-D conv.
        as_batch = x.transpose(1, 2, 0)
        out = self.block(as_batch)
        # (N, C_out, H) -> (H, N, C_out)
        return out.transpose(2, 0, 1)

    def __repr__(self) -> str:
        return (f"TemporalConvolution(in={self.in_channels}, "
                f"out={self.out_channels})")
