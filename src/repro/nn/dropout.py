"""Dropout layers (elementwise and spatial/channelwise variants)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ensure_tensor
from .module import Module
from .random import get_rng


class Dropout(Module):
    """Inverted elementwise dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else get_rng()

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.uniform(size=x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class SpatialDropout1d(Module):
    """Channelwise dropout for ``(batch, channels, length)`` tensors.

    Zeroes entire feature maps instead of single elements (Srivastava et
    al.'s dropout applied per channel), as the paper adds "a spatial dropout
    after each TCN layer for regularization" (§IV-C).
    """

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else get_rng()

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        if x.ndim < 2:
            raise ValueError("SpatialDropout1d expects at least 2-D input")
        mask_shape = x.shape[:-1] + (1,)
        mask = (self._rng.uniform(size=mask_shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"SpatialDropout1d(p={self.p})"
