"""Normalization layers."""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..tensor import Tensor, ensure_tensor
from .module import Module, Parameter


class LayerNorm(Module):
    """Layer normalization (Ba et al., 2016) over the trailing dimensions."""

    def __init__(self, normalized_shape: Union[int, Sequence[int]],
                 eps: float = 1e-5, elementwise_affine: bool = True):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape: Tuple[int, ...] = tuple(normalized_shape)
        self.eps = eps
        if elementwise_affine:
            self.weight = Parameter(np.ones(self.normalized_shape))
            self.bias = Parameter(np.zeros(self.normalized_shape))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        ndim = len(self.normalized_shape)
        if x.shape[-ndim:] != self.normalized_shape:
            raise ValueError(f"expected trailing shape {self.normalized_shape}"
                             f", got {x.shape}")
        axes = tuple(range(x.ndim - ndim, x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        if self.weight is not None:
            normalized = normalized * self.weight + self.bias
        return normalized

    def __repr__(self) -> str:
        return (f"LayerNorm({self.normalized_shape}, eps={self.eps}, "
                f"affine={self.weight is not None})")


class BatchNorm1d(Module):
    """Batch normalization for ``(batch, features)`` or ``(batch, C, L)``.

    Keeps exponential running statistics for evaluation mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1, affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        if affine:
            self.weight = Parameter(np.ones(num_features))
            self.bias = Parameter(np.zeros(num_features))
        else:
            self.weight = None
            self.bias = None
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if x.ndim == 2:
            axes: Tuple[int, ...] = (0,)
            view = (1, -1)
        elif x.ndim == 3:
            axes = (0, 2)
            view = (1, -1, 1)
        else:
            raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got "
                             f"{x.ndim}-D")
        feature_axis = 1
        if x.shape[feature_axis] != self.num_features:
            raise ValueError(f"expected {self.num_features} features, got "
                             f"{x.shape[feature_axis]}")
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self.running_mean = ((1 - m) * self.running_mean
                                 + m * mean.data.reshape(-1))
            self.running_var = ((1 - m) * self.running_var
                                + m * var.data.reshape(-1))
        else:
            mean = Tensor(self.running_mean.reshape(view))
            var = Tensor(self.running_var.reshape(view))
        normalized = (x - mean) / (var + self.eps).sqrt()
        if self.weight is not None:
            normalized = (normalized * self.weight.reshape(*view)
                          + self.bias.reshape(*view))
        return normalized

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features}, eps={self.eps})"
