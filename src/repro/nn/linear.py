"""Affine layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, linear
from ..tensor.fused import affine_act_fused, fused_enabled
from . import init
from .module import Module, Parameter
from .random import get_rng


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality of the last axis.
    bias:
        Whether to learn an additive bias.
    rng:
        Optional generator for reproducible initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature sizes must be positive, got "
                             f"({in_features}, {out_features})")
        self.in_features = in_features
        self.out_features = out_features
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=gen)
        if bias:
            self.bias = Parameter(np.empty(out_features))
            init.bias_uniform_(self.bias, in_features, rng=gen)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected last dim {self.in_features}, got "
                             f"{x.shape[-1]}")
        if fused_enabled():
            return affine_act_fused(x, self.weight, self.bias)
        return linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self.bias is not None})")
