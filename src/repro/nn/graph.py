"""Graph neural-network layers: spectral graph convolution and attention.

:class:`GraphConv` implements Kipf & Welling's first-order convolution
(paper Eq. 2): ``Z = Â X Θ`` for a pre-normalized adjacency ``Â``.  The
adjacency is an input of ``forward`` rather than a constructor argument
because the paper's time-sensitive strategy (Eq. 5) supplies a *different*
adjacency at every time-step.

:class:`GraphAttention` is the GAT layer (Veličković et al., 2018) used by
the RT-GAT baseline of Table IV.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, concat, ensure_tensor, linear, softmax
from . import init
from .module import Module, Parameter
from .random import get_rng


class GraphConv(Module):
    """First-order spectral graph convolution ``Z = Â X Θ (+ b)``.

    ``forward(x, adj)`` accepts ``x`` of shape ``(..., N, C_in)`` and ``adj``
    of shape ``(N, N)`` or batched ``(..., N, N)``; broadcasting follows
    NumPy matmul rules, so a single adjacency can drive every time-step or a
    per-step stack of adjacencies can be supplied.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.xavier_uniform_(self.weight, rng=gen)
        if bias:
            self.bias = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor, adj: Tensor) -> Tensor:
        x = ensure_tensor(x)
        adj = ensure_tensor(adj)
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected {self.in_features} input features, "
                             f"got {x.shape[-1]}")
        if adj.shape[-1] != x.shape[-2]:
            raise ValueError(f"adjacency size {adj.shape[-1]} does not match "
                             f"node count {x.shape[-2]}")
        support = linear(x, self.weight)      # (..., N, C_out)
        out = adj @ support                   # (..., N, C_out)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"GraphConv(in_features={self.in_features}, "
                f"out_features={self.out_features})")


class GraphAttention(Module):
    """Single-layer multi-head graph attention (GAT).

    Attention coefficients ``e_ij = LeakyReLU(aᵀ[W h_i ‖ W h_j])`` are
    masked to the 1-hop neighborhood (plus self-loops) and normalized with a
    softmax.  Heads are concatenated (or averaged when ``concat_heads`` is
    false, as for an output layer).
    """

    def __init__(self, in_features: int, out_features: int, n_heads: int = 1,
                 concat_heads: bool = True, negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if concat_heads and out_features % n_heads != 0:
            raise ValueError(f"out_features={out_features} not divisible by "
                             f"n_heads={n_heads}")
        self.in_features = in_features
        self.out_features = out_features
        self.n_heads = n_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        head_dim = out_features // n_heads if concat_heads else out_features
        self.head_dim = head_dim
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty((n_heads, head_dim, in_features)))
        self.attn_src = Parameter(np.empty((n_heads, head_dim)))
        self.attn_dst = Parameter(np.empty((n_heads, head_dim)))
        for h in range(n_heads):
            bound = np.sqrt(6.0 / (in_features + head_dim))
            self.weight.data[h] = gen.uniform(-bound, bound,
                                              size=(head_dim, in_features))
        init.xavier_uniform_(self.attn_src, rng=gen)
        init.xavier_uniform_(self.attn_dst, rng=gen)
        self.bias = Parameter(np.zeros(out_features if concat_heads
                                       else out_features))

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Apply attention over nodes.

        Parameters
        ----------
        x:
            Node features ``(..., N, C_in)``.
        mask:
            Boolean/0-1 array ``(N, N)``; entry ``(i, j)`` true when node
            ``j`` may send messages to node ``i``.  Self-loops are added
            automatically.
        """
        x = ensure_tensor(x)
        n = x.shape[-2]
        mask = np.asarray(ensure_tensor(mask).data, dtype=bool) | np.eye(n, dtype=bool)
        neg_inf = np.where(mask, 0.0, -1e9)
        head_outputs = []
        for h in range(self.n_heads):
            # Per-head projection: slice the registered parameter so
            # gradients route back through the shared tensor.
            proj = x @ self.weight[h].swapaxes(-1, -2)      # (..., N, d)
            src_score = (proj * self.attn_src[h]).sum(axis=-1)  # (..., N)
            dst_score = (proj * self.attn_dst[h]).sum(axis=-1)  # (..., N)
            logits = (src_score.unsqueeze(-1) + dst_score.unsqueeze(-2))
            logits = logits.leaky_relu(self.negative_slope) + Tensor(neg_inf)
            alpha = softmax(logits, axis=-1)                # (..., N, N)
            head_outputs.append(alpha @ proj)               # (..., N, d)
        if self.concat_heads:
            out = concat(head_outputs, axis=-1)
        else:
            out = head_outputs[0]
            for extra in head_outputs[1:]:
                out = out + extra
            out = out * (1.0 / self.n_heads)
        return out + self.bias

    def __repr__(self) -> str:
        return (f"GraphAttention(in_features={self.in_features}, "
                f"out_features={self.out_features}, n_heads={self.n_heads})")
