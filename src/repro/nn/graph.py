"""Graph neural-network layers: spectral graph convolution and attention.

:class:`GraphConv` implements Kipf & Welling's first-order convolution
(paper Eq. 2): ``Z = Â X Θ`` for a pre-normalized adjacency ``Â``.  The
adjacency is an input of ``forward`` rather than a constructor argument
because the paper's time-sensitive strategy (Eq. 5) supplies a *different*
adjacency at every time-step.  The layer dispatches on the adjacency's
type: a dense :class:`Tensor` propagates through batched matmul, a
:class:`~repro.tensor.sparse.SparseTensor` through the CSR ``spmm``
primitive — callers pick the representation (usually via a strategy's
``graph_mode``), the layer follows.

:class:`GraphAttention` is the GAT layer (Veličković et al., 2018) used by
the RT-GAT baseline of Table IV.  All heads are computed in one batched
einsum rather than a per-head Python loop, and the layer carries its own
``graph_mode``: the sparse path evaluates attention logits only on the
masked edges and normalizes with a per-row segment softmax — exactly equal
to the dense masked softmax, because masked dense logits sit at ``-1e9``
where ``exp`` underflows to zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, einsum, ensure_tensor, linear, softmax
from ..tensor.fused import fused_enabled, gcn_propagate_fused
from ..tensor.sparse import (SparsePattern, SparseTensor, resolve_graph_mode,
                             sparse_gather, sparse_segment_sum, spmm)
from . import init
from .module import Module, Parameter
from .random import get_rng


def set_graph_mode(module: Module, mode: str) -> int:
    """Set ``graph_mode`` on every submodule that has one.

    Walks ``module.modules()`` and updates relation strategies, attention
    layers and any future module exposing a ``graph_mode`` attribute.
    Returns the number of modules updated.  This is how
    :class:`~repro.core.trainer.TrainConfig.graph_mode` reaches models
    built by the baseline factories without changing their protocol.
    """
    if mode not in ("auto", "dense", "sparse"):
        raise ValueError(f"unknown graph mode {mode!r}; expected "
                         "auto/dense/sparse")
    count = 0
    for submodule in module.modules():
        if hasattr(submodule, "graph_mode"):
            submodule.graph_mode = mode
            count += 1
    return count


class GraphConv(Module):
    """First-order spectral graph convolution ``Z = Â X Θ (+ b)``.

    ``forward(x, adj)`` accepts ``x`` of shape ``(..., N, C_in)`` and ``adj``
    either dense — shape ``(N, N)`` or batched ``(..., N, N)``, broadcast
    by NumPy matmul rules — or sparse (a
    :class:`~repro.tensor.sparse.SparseTensor`, optionally with a batch of
    value vectors), in which case propagation runs through ``spmm``.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.xavier_uniform_(self.weight, rng=gen)
        if bias:
            self.bias = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor, adj) -> Tensor:
        x = ensure_tensor(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected {self.in_features} input features, "
                             f"got {x.shape[-1]}")
        if isinstance(adj, SparseTensor):
            if adj.pattern.shape[1] != x.shape[-2]:
                raise ValueError(f"adjacency size {adj.pattern.shape[1]} "
                                 f"does not match node count {x.shape[-2]}")
            if fused_enabled():
                return gcn_propagate_fused(x, adj, self.weight, self.bias)
            support = linear(x, self.weight)  # (..., N, C_out)
            out = spmm(adj, support)          # (..., N, C_out)
        else:
            adj = ensure_tensor(adj)
            if adj.shape[-1] != x.shape[-2]:
                raise ValueError(f"adjacency size {adj.shape[-1]} does not "
                                 f"match node count {x.shape[-2]}")
            if fused_enabled():
                return gcn_propagate_fused(x, adj, self.weight, self.bias)
            support = linear(x, self.weight)      # (..., N, C_out)
            out = adj @ support                   # (..., N, C_out)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"GraphConv(in_features={self.in_features}, "
                f"out_features={self.out_features})")


class GraphAttention(Module):
    """Single-layer multi-head graph attention (GAT).

    Attention coefficients ``e_ij = LeakyReLU(aᵀ[W h_i ‖ W h_j])`` are
    masked to the 1-hop neighborhood (plus self-loops) and normalized with a
    softmax.  Heads are concatenated (or averaged when ``concat_heads`` is
    false, as for an output layer).

    ``graph_mode`` selects the masked-softmax backend: ``dense`` computes
    full ``(N, N)`` logit matrices, ``sparse`` only per-edge logits with a
    segment softmax, ``auto`` picks by mask density (both give identical
    numbers; see ``docs/performance.md``).
    """

    def __init__(self, in_features: int, out_features: int, n_heads: int = 1,
                 concat_heads: bool = True, negative_slope: float = 0.2,
                 graph_mode: str = "auto",
                 density_threshold: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if concat_heads and out_features % n_heads != 0:
            raise ValueError(f"out_features={out_features} not divisible by "
                             f"n_heads={n_heads}")
        self.in_features = in_features
        self.out_features = out_features
        self.n_heads = n_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.graph_mode = graph_mode
        self.density_threshold = density_threshold
        resolve_graph_mode(graph_mode, 1.0, density_threshold)
        head_dim = out_features // n_heads if concat_heads else out_features
        self.head_dim = head_dim
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty((n_heads, head_dim, in_features)))
        self.attn_src = Parameter(np.empty((n_heads, head_dim)))
        self.attn_dst = Parameter(np.empty((n_heads, head_dim)))
        for h in range(n_heads):
            bound = np.sqrt(6.0 / (in_features + head_dim))
            self.weight.data[h] = gen.uniform(-bound, bound,
                                              size=(head_dim, in_features))
        init.xavier_uniform_(self.attn_src, rng=gen)
        init.xavier_uniform_(self.attn_dst, rng=gen)
        self.bias = Parameter(np.zeros(out_features if concat_heads
                                       else out_features))
        # (mask object, pattern) pairs; keeping the mask reference pins its
        # id so identity-keyed reuse can never alias a recycled array.
        self._pattern_cache: list = []

    # ------------------------------------------------------------------
    def _edge_pattern(self, key, mask: np.ndarray) -> SparsePattern:
        """CSR pattern of ``mask ∪ I``, cached per *caller* mask instance.

        ``key`` is the mask object the caller passed (stable across
        forwards, e.g. RT-GAT's relation mask); ``mask`` is the derived
        boolean array including self-loops, which is rebuilt per call and
        therefore useless as a cache key.
        """
        for cached_key, pattern in self._pattern_cache:
            if cached_key is key:
                return pattern
        pattern = SparsePattern.from_mask(mask)
        self._pattern_cache.append((key, pattern))
        del self._pattern_cache[:-4]
        return pattern

    def _attend_dense(self, proj: Tensor, src: Tensor, dst: Tensor,
                      mask: np.ndarray) -> Tensor:
        """Masked softmax attention on full matrices: ``(B, H, N, d)``."""
        neg_inf = np.where(mask, 0.0, -1e9)
        logits = src.unsqueeze(-1) + dst.unsqueeze(-2)      # (B, H, N, N)
        logits = logits.leaky_relu(self.negative_slope) + Tensor(neg_inf)
        alpha = softmax(logits, axis=-1)
        return alpha @ proj

    def _attend_sparse(self, proj: Tensor, src: Tensor, dst: Tensor,
                       pattern: SparsePattern) -> Tensor:
        """Segment softmax attention on stored edges only.

        Exactly equals the dense masked softmax: the dense row max is
        always attained on a stored edge (the self-loop guarantees one),
        and ``exp(-1e9 - max)`` underflows to exactly 0.0, so the dense
        denominator is the same sum over stored edges.
        """
        logits = (sparse_gather(src, pattern, axis="row")
                  + sparse_gather(dst, pattern, axis="col"))  # (B, H, nnz)
        logits = logits.leaky_relu(self.negative_slope)
        # Row-max shift (a softmax-invariant constant, like the dense op).
        starts = pattern.indptr[:-1]
        row_max = np.maximum.reduceat(logits.data, starts, axis=-1)
        shifted = logits - Tensor(row_max[..., pattern.rows])
        weights = shifted.exp()
        denom = sparse_segment_sum(weights, pattern)          # (B, H, N)
        alpha = weights / sparse_gather(denom, pattern, axis="row")
        return spmm(SparseTensor(pattern, alpha), proj)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Apply attention over nodes.

        Parameters
        ----------
        x:
            Node features ``(..., N, C_in)``.
        mask:
            Boolean/0-1 array ``(N, N)``; entry ``(i, j)`` true when node
            ``j`` may send messages to node ``i``.  Self-loops are added
            automatically.
        """
        x = ensure_tensor(x)
        n = x.shape[-2]
        mask_key = mask
        mask = np.asarray(ensure_tensor(mask).data, dtype=bool) \
            | np.eye(n, dtype=bool)
        lead = x.shape[:-2]
        flat = x.reshape((-1, n, self.in_features))           # (B, N, C_in)

        # All heads at once; no ellipsis in this engine's einsum, hence
        # the explicit flattened batch axis.
        proj = einsum("bni,hdi->bhnd", flat, self.weight)     # (B, H, N, d)
        src = einsum("bhnd,hd->bhn", proj, self.attn_src)     # (B, H, N)
        dst = einsum("bhnd,hd->bhn", proj, self.attn_dst)     # (B, H, N)

        mode = resolve_graph_mode(self.graph_mode, mask.mean(),
                                  self.density_threshold)
        if mode == "sparse":
            out = self._attend_sparse(proj, src, dst,
                                      self._edge_pattern(mask_key, mask))
        else:
            out = self._attend_dense(proj, src, dst, mask)    # (B, H, N, d)

        batch = out.shape[0]
        if self.concat_heads:
            # (B, H, N, d) → (B, N, H·d); head-major feature order matches
            # the concatenation of per-head outputs.
            out = out.swapaxes(1, 2).reshape(
                (batch, n, self.n_heads * self.head_dim))
        else:
            out = out.mean(axis=1)                            # (B, N, d)
        out = out.reshape(lead + (n, self.out_features))
        return out + self.bias

    def __repr__(self) -> str:
        return (f"GraphAttention(in_features={self.in_features}, "
                f"out_features={self.out_features}, n_heads={self.n_heads})")
