"""Module/Parameter system: the layer-composition backbone.

Follows the familiar PyTorch contract: a :class:`Module` auto-registers any
:class:`Parameter` or sub-``Module`` assigned as an attribute, exposes
recursive iteration over parameters, a train/eval switch, and a flat
``state_dict`` for checkpointing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class LoadStateResult(NamedTuple):
    """Outcome of :meth:`Module.load_state_dict` (PyTorch-style).

    Truthiness is inverted relative to "success": an empty result means
    every parameter matched.  ``bool(result)`` is ``True`` when anything
    was missing or unexpected, so ``assert not model.load_state_dict(s)``
    reads naturally in tests.
    """

    missing_keys: Tuple[str, ...]
    unexpected_keys: Tuple[str, ...]

    def __bool__(self) -> bool:  # noqa: D105 - see class docstring
        return bool(self.missing_keys or self.unexpected_keys)


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable leaf of a :class:`Module`."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers and models.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Parameters and sub-modules are registered automatically on attribute
    assignment, so ``self.weight = Parameter(...)`` is all a layer needs.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        if param is not None:
            setattr(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for this module and all
        descendants, depth-first; the root itself has name ``prefix``
        (the empty string by default), matching PyTorch."""
        yield (prefix, self)
        for child_name, child in self._modules.items():
            child_prefix = (f"{prefix}.{child_name}" if prefix
                            else child_name)
            yield from child.named_modules(prefix=child_prefix)

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", bool(mode))
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def astype(self, dtype) -> "Module":
        """Cast every parameter's storage to ``dtype`` in place.

        Parameter objects keep their identity (optimizers bound to them stay
        valid); pending gradients are dropped rather than cast.  Plain
        floating :class:`~repro.tensor.Tensor` attributes (constant buffers
        like relation masks) are cast too — a float64 buffer left behind
        would re-promote every op that touches it and defeat a float32 run.
        """
        target = np.dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != target:
                param.data = param.data.astype(target)
                param.zero_grad()
        from ..tensor.tensor import Tensor as _Tensor
        for module in self.modules():
            for name, value in vars(module).items():
                if (isinstance(value, _Tensor)
                        and not isinstance(value, Parameter)
                        and np.issubdtype(value.data.dtype, np.floating)
                        and value.data.dtype != target):
                    setattr(module, name, value.astype(target))
        return self

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter names to copies of their arrays."""
        return {name: param.data.copy()
                for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        strict: bool = True) -> LoadStateResult:
        """Copy arrays from ``state`` into this module's parameters.

        Returns a :class:`LoadStateResult` with the sorted
        ``missing_keys`` (parameters this module has but ``state`` lacks)
        and ``unexpected_keys`` (entries of ``state`` with no matching
        parameter).  With ``strict=True`` any mismatch raises instead;
        shape mismatches always raise.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, array in state.items():
            if name not in own:
                continue
            param = own[name]
            if param.data.shape != array.shape:
                raise ValueError(f"shape mismatch for {name!r}: parameter is "
                                 f"{param.data.shape}, state is {array.shape}")
            param.data[...] = array
        return LoadStateResult(tuple(sorted(missing)),
                               tuple(sorted(unexpected)))

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [type(self).__name__ + "("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else (
            f"{type(self).__name__}()")
