"""Temporal convolution network blocks (paper §IV-C, Eq. 6, Figure 4).

A :class:`TemporalBlock` is the unit the paper describes: two causal,
weight-normalized 1-D convolutions with ReLU and spatial dropout, wrapped by
a residual connection.  Strides > 1 expand the receptive field (the paper
"changes the filter moving strides ... with zero padding"); the residual
branch is then downsampled with a strided 1×1 convolution so the shapes
match.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..tensor import Tensor
from .conv import CausalWeightNormConv1d, Conv1d
from .dropout import SpatialDropout1d
from .module import Module


class TemporalBlock(Module):
    """Residual causal-convolution block.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the ``(B, C, T)`` input/output.
    kernel_size:
        Temporal filter width ``k`` in Eq. (6).
    stride:
        Temporal stride; compresses the time axis by this factor.
    dilation:
        Dilation for the causal filters (doubles per level in a deep TCN).
    dropout:
        Spatial (channelwise) dropout probability after each convolution.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int = 3, stride: int = 1, dilation: int = 1,
                 dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.conv1 = CausalWeightNormConv1d(
            in_channels, out_channels, kernel_size, stride=stride,
            dilation=dilation, rng=rng)
        self.drop1 = SpatialDropout1d(dropout, rng=rng)
        self.conv2 = CausalWeightNormConv1d(
            out_channels, out_channels, kernel_size, stride=1,
            dilation=dilation, rng=rng)
        self.drop2 = SpatialDropout1d(dropout, rng=rng)
        if in_channels != out_channels or stride != 1:
            self.downsample = Conv1d(in_channels, out_channels, 1,
                                     stride=stride, rng=rng)
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.drop1(self.conv1(x).relu())
        out = self.drop2(self.conv2(out).relu())
        residual = x if self.downsample is None else self.downsample(x)
        return (out + residual).relu()


class TemporalConvNet(Module):
    """A stack of :class:`TemporalBlock` levels with doubling dilation.

    ``channels`` gives the output width of each level; dilation at level
    ``l`` is ``2**l`` so the receptive field grows exponentially with depth,
    following Lea et al. (2016) / WaveNet.
    """

    def __init__(self, in_channels: int, channels: Sequence[int],
                 kernel_size: int = 3, stride: int = 1, dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not channels:
            raise ValueError("channels must be a non-empty sequence")
        self.levels = len(channels)
        prev = in_channels
        for level, width in enumerate(channels):
            block = TemporalBlock(prev, width, kernel_size=kernel_size,
                                  stride=stride if level == 0 else 1,
                                  dilation=2 ** level, dropout=dropout,
                                  rng=rng)
            self.add_module(f"block{level}", block)
            prev = width
        self.out_channels = prev

    def forward(self, x: Tensor) -> Tensor:
        for level in range(self.levels):
            x = self._modules[f"block{level}"](x)
        return x
