"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from .module import Module


class Sequential(Module):
    """Chain modules, feeding each output to the next layer's input."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers: List[Module] = []
        for index, layer in enumerate(layers):
            self.add_module(str(index), layer)
            self._layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        self.add_module(str(len(self._layers)), layer)
        self._layers.append(layer)
        return self

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class ModuleList(Module):
    """A list of sub-modules that registers its items for parameter walks."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
