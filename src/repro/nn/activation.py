"""Module wrappers around the functional activations (for ``Sequential``)."""

from __future__ import annotations

from ..tensor import Tensor, ensure_tensor
from .module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).relu()

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).leaky_relu(self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).elu(self.alpha)

    def __repr__(self) -> str:
        return f"ELU(alpha={self.alpha})"
