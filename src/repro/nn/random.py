"""Seedable randomness shared by layers that need it (init, dropout).

``manual_seed`` resets the library-wide generator so experiments are exactly
repeatable — the evaluation protocol of the paper (15 repeated runs) relies
on distinct seeds per run, which :func:`fork_rng` provides deterministically.
"""

from __future__ import annotations

import numpy as np

_generator: np.random.Generator = np.random.default_rng()


def manual_seed(seed: int) -> None:
    """Seed the global generator used for parameter init and dropout."""
    global _generator
    _generator = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the library-wide random generator."""
    return _generator


def fork_rng(stream: int) -> np.random.Generator:
    """Derive an independent generator for run ``stream``.

    Uses ``numpy``'s ``spawn``-style seeding so streams do not overlap;
    the experiment protocol uses one stream per repeated run.
    """
    seed_seq = np.random.SeedSequence(entropy=stream)
    return np.random.default_rng(seed_seq)
