"""Parameter initialization schemes.

Provides the standard fan-based initializers (Glorot/Xavier, He/Kaiming) the
paper's layers use, plus simple constant fills.  All functions mutate the
tensor's array in place and return the tensor for chaining.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor
from .random import get_rng


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans for a scalar parameter")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros_(tensor: Tensor) -> Tensor:
    tensor.data[...] = 0.0
    return tensor


def ones_(tensor: Tensor) -> Tensor:
    tensor.data[...] = 1.0
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data[...] = value
    return tensor


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0,
             rng: Optional[np.random.Generator] = None) -> Tensor:
    gen = rng if rng is not None else get_rng()
    tensor.data[...] = gen.uniform(low, high, size=tensor.shape)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    gen = rng if rng is not None else get_rng()
    tensor.data[...] = gen.normal(mean, std, size=tensor.shape)
    return tensor


def xavier_uniform_(tensor: Tensor, gain: float = 1.0,
                    rng: Optional[np.random.Generator] = None) -> Tensor:
    """Glorot & Bengio (2010) uniform init: U(-a, a), a = gain·√(6/(fi+fo))."""
    fan_in, fan_out = _fan_in_fan_out(tensor.shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound, rng=rng)


def xavier_normal_(tensor: Tensor, gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> Tensor:
    fan_in, fan_out = _fan_in_fan_out(tensor.shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return normal_(tensor, 0.0, std, rng=rng)


def kaiming_uniform_(tensor: Tensor, a: float = math.sqrt(5),
                     rng: Optional[np.random.Generator] = None) -> Tensor:
    """He et al. (2015) uniform init with leaky-ReLU gain (PyTorch default)."""
    fan_in, _ = _fan_in_fan_out(tensor.shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return uniform_(tensor, -bound, bound, rng=rng)


def kaiming_normal_(tensor: Tensor, a: float = 0.0,
                    rng: Optional[np.random.Generator] = None) -> Tensor:
    fan_in, _ = _fan_in_fan_out(tensor.shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    return normal_(tensor, 0.0, gain / math.sqrt(fan_in), rng=rng)


def bias_uniform_(tensor: Tensor, fan_in: int,
                  rng: Optional[np.random.Generator] = None) -> Tensor:
    """PyTorch-style bias init: U(-1/√fan_in, 1/√fan_in)."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return uniform_(tensor, -bound, bound, rng=rng)
