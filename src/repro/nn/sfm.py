"""State Frequency Memory recurrent network (Zhang, Aggarwal & Qi, KDD 2017).

The SFM baseline in the paper's Table IV decomposes the cell memory into
``n_freq`` frequency components, keeping a complex-valued state whose real
and imaginary parts rotate at fixed frequencies.  Short and long trading
patterns then live in different components of the amplitude spectrum.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor, linear, sigmoid, stack, tanh
from . import init
from .module import Module, Parameter
from .random import get_rng


class SFMCell(Module):
    """One step of the state-frequency-memory recurrence.

    State is ``(h, Re S, Im S)`` with ``S`` of shape
    ``(batch, hidden, n_freq)``.
    """

    def __init__(self, input_size: int, hidden_size: int, n_freq: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if n_freq < 1:
            raise ValueError("n_freq must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.n_freq = n_freq
        gen = rng if rng is not None else get_rng()
        # Gates: input i, state-forget f_ste (H), frequency-forget f_fre (K),
        # modulation c~, output o.
        gate_rows = 3 * hidden_size + n_freq + hidden_size  # i, f_ste, c~, o, + f_fre
        self.weight_ih = Parameter(np.empty((gate_rows, input_size)))
        self.weight_hh = Parameter(np.empty((gate_rows, hidden_size)))
        self.bias = Parameter(np.zeros(gate_rows))
        init.xavier_uniform_(self.weight_ih, rng=gen)
        init.xavier_uniform_(self.weight_hh, rng=gen)
        # Amplitude-combination weights: per hidden unit, mix the K frequency
        # amplitudes into one memory value.
        self.weight_amp = Parameter(np.empty((hidden_size, n_freq)))
        self.bias_amp = Parameter(np.zeros(hidden_size))
        init.xavier_uniform_(self.weight_amp, rng=gen)
        # Fixed rotation frequencies ω_k = 2πk/K.
        self.omegas = 2.0 * math.pi * np.arange(n_freq) / n_freq

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor, Tensor]:
        h = Tensor(np.zeros((batch_size, self.hidden_size)))
        re = Tensor(np.zeros((batch_size, self.hidden_size, self.n_freq)))
        im = Tensor(np.zeros((batch_size, self.hidden_size, self.n_freq)))
        return h, re, im

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor, Tensor],
                step: int) -> Tuple[Tensor, Tensor, Tensor]:
        h_prev, re_prev, im_prev = state
        H, K = self.hidden_size, self.n_freq
        gates = (linear(x, self.weight_ih)
                 + linear(h_prev, self.weight_hh) + self.bias)
        i = sigmoid(gates[..., 0 * H:1 * H])
        f_ste = sigmoid(gates[..., 1 * H:2 * H])
        c_tilde = tanh(gates[..., 2 * H:3 * H])
        o = sigmoid(gates[..., 3 * H:4 * H])
        f_fre = sigmoid(gates[..., 4 * H:4 * H + K])
        # Joint forget gate F = f_ste ⊗ f_fre : (B, H, K).
        forget = f_ste.unsqueeze(-1) * f_fre.unsqueeze(-2)
        update = (i * c_tilde).unsqueeze(-1)          # (B, H, 1)
        cos_t = Tensor(np.cos(self.omegas * step))    # (K,)
        sin_t = Tensor(np.sin(self.omegas * step))
        re = forget * re_prev + update * cos_t
        im = forget * im_prev + update * sin_t
        amplitude = (re * re + im * im + 1e-12).sqrt()
        combined = tanh((amplitude * self.weight_amp).sum(axis=-1)
                        + self.bias_amp)
        h = o * combined
        return h, re, im


class SFM(Module):
    """Sequence-level SFM encoder over ``(B, T, D)`` input.

    Returns per-step hidden states ``(B, T, H)`` and the final hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, n_freq: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cell = SFMCell(input_size, hidden_size, n_freq=n_freq, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        if x.ndim != 3:
            raise ValueError(f"SFM expects (B, T, D) input, got {x.shape}")
        batch, steps, _ = x.shape
        h, re, im = self.cell.initial_state(batch)
        outputs = []
        for t in range(steps):
            h, re, im = self.cell(x[:, t, :], (h, re, im), step=t + 1)
            outputs.append(h)
        return stack(outputs, axis=1), h
