"""1-D convolution layers, including the causal/weight-normalized variants
used by the paper's temporal convolution network (§IV-C).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor, conv1d
from . import init
from .module import Module, Parameter
from .random import get_rng


class Conv1d(Module):
    """Standard 1-D convolution over ``(batch, channels, length)`` input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Union[int, Tuple[int, int]] = 0,
                 dilation: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        if stride <= 0 or dilation <= 0:
            raise ValueError("stride and dilation must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(
            np.empty((out_channels, in_channels, kernel_size)))
        init.kaiming_uniform_(self.weight, rng=gen)
        if bias:
            self.bias = Parameter(np.empty(out_channels))
            init.bias_uniform_(self.bias, in_channels * kernel_size, rng=gen)
        else:
            self.bias = None

    def _weight(self) -> Tensor:
        return self.weight

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self._weight(), self.bias, stride=self.stride,
                      padding=self.padding, dilation=self.dilation)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.in_channels}, "
                f"{self.out_channels}, kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}, "
                f"dilation={self.dilation})")


class CausalConv1d(Conv1d):
    """Left-padded convolution so output at time ``t`` sees only ``≤ t``.

    This is the paper's Eq. (6)/Figure 4 building block: the receptive field
    is expanded through dilation and there is no leakage from the future to
    the past.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, dilation: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        left_pad = dilation * (kernel_size - 1)
        super().__init__(in_channels, out_channels, kernel_size,
                         stride=stride, padding=(left_pad, 0),
                         dilation=dilation, bias=bias, rng=rng)


class WeightNormConv1d(Conv1d):
    """Conv1d with weight normalization (Salimans & Kingma, 2016).

    Reparameterizes each output-channel filter as ``w = g · v/‖v‖`` so the
    direction and magnitude are learned separately; the paper applies this to
    every TCN filter.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Union[int, Tuple[int, int]] = 0,
                 dilation: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_channels, out_channels, kernel_size,
                         stride=stride, padding=padding, dilation=dilation,
                         bias=bias, rng=rng)
        # Re-register the raw weight as the direction `v`, and add `g`
        # initialized to the current norms so the initial function is
        # unchanged.
        v = self.weight.data
        norms = np.sqrt((v.reshape(v.shape[0], -1) ** 2).sum(axis=1))
        self.weight_g = Parameter(norms.reshape(-1, 1, 1))
        self.weight_v = Parameter(v.copy())
        del self._parameters["weight"]
        object.__setattr__(self, "weight", None)

    def _weight(self) -> Tensor:
        v = self.weight_v
        norm = (v * v).sum(axis=(1, 2), keepdims=True).sqrt()
        return self.weight_g * v / (norm + 1e-12)


class CausalWeightNormConv1d(WeightNormConv1d):
    """Causal + weight-normalized convolution, the exact TCN filter of §IV-C."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, dilation: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        left_pad = dilation * (kernel_size - 1)
        super().__init__(in_channels, out_channels, kernel_size,
                         stride=stride, padding=(left_pad, 0),
                         dilation=dilation, bias=bias, rng=rng)
