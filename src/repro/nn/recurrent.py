"""Recurrent layers (LSTM, GRU) used by the sequential baselines.

The paper's comparison set (Rank_LSTM, RSR, A-LSTM, FinGAT-style GRU models)
is recurrent; these cells implement the standard formulations with combined
gate matrices.  Inputs follow the batch-first convention ``(B, T, D)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor, concat, linear, sigmoid, stack, tanh
from ..tensor.fused import fused_enabled, gru_cell_fused, lstm_cell_fused
from . import init
from .module import Module, Parameter
from .random import get_rng


class LSTMCell(Module):
    """A single long short-term memory cell (Hochreiter & Schmidhuber)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gen = rng if rng is not None else get_rng()
        self.weight_ih = Parameter(np.empty((4 * hidden_size, input_size)))
        self.weight_hh = Parameter(np.empty((4 * hidden_size, hidden_size)))
        self.bias = Parameter(np.zeros(4 * hidden_size))
        init.xavier_uniform_(self.weight_ih, rng=gen)
        init.xavier_uniform_(self.weight_hh, rng=gen)
        # Bias the forget gate toward remembering, a standard trick that
        # stabilizes early training.
        self.bias.data[hidden_size:2 * hidden_size] = 1.0

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]
                ) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        if fused_enabled():
            return lstm_cell_fused(x, h_prev, c_prev, self.weight_ih,
                                   self.weight_hh, self.bias,
                                   self.hidden_size)
        gates = (linear(x, self.weight_ih)
                 + linear(h_prev, self.weight_hh) + self.bias)
        H = self.hidden_size
        i = sigmoid(gates[..., 0 * H:1 * H])
        f = sigmoid(gates[..., 1 * H:2 * H])
        g = tanh(gates[..., 2 * H:3 * H])
        o = sigmoid(gates[..., 3 * H:4 * H])
        c = f * c_prev + i * g
        h = o * tanh(c)
        return h, c

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-step (optionally stacked) LSTM over ``(B, T, D)`` input.

    Returns the per-step hidden states ``(B, T, H)`` and the final
    ``(h, c)`` of the last layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        gen = rng if rng is not None else get_rng()
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            self.add_module(f"cell{layer}",
                            LSTMCell(in_size, hidden_size, rng=gen))

    def _cell(self, layer: int) -> LSTMCell:
        return self._modules[f"cell{layer}"]

    def forward(self, x: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (B, T, D) input, got {x.shape}")
        batch, steps, _ = x.shape
        layer_input = [x[:, t, :] for t in range(steps)]
        h = c = None
        for layer in range(self.num_layers):
            cell = self._cell(layer)
            if state is not None and layer == 0 and self.num_layers == 1:
                h, c = state
            else:
                h, c = cell.initial_state(batch)
            outputs = []
            for step_x in layer_input:
                h, c = cell(step_x, (h, c))
                outputs.append(h)
            layer_input = outputs
        return stack(layer_input, axis=1), (h, c)


class GRUCell(Module):
    """A gated recurrent unit cell (Cho et al., 2014)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gen = rng if rng is not None else get_rng()
        self.weight_ih = Parameter(np.empty((3 * hidden_size, input_size)))
        self.weight_hh = Parameter(np.empty((3 * hidden_size, hidden_size)))
        self.bias_ih = Parameter(np.zeros(3 * hidden_size))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size))
        init.xavier_uniform_(self.weight_ih, rng=gen)
        init.xavier_uniform_(self.weight_hh, rng=gen)

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        if fused_enabled():
            return gru_cell_fused(x, h_prev, self.weight_ih, self.weight_hh,
                                  self.bias_ih, self.bias_hh,
                                  self.hidden_size)
        H = self.hidden_size
        gi = linear(x, self.weight_ih) + self.bias_ih
        gh = linear(h_prev, self.weight_hh) + self.bias_hh
        r = sigmoid(gi[..., 0 * H:1 * H] + gh[..., 0 * H:1 * H])
        z = sigmoid(gi[..., 1 * H:2 * H] + gh[..., 1 * H:2 * H])
        n = tanh(gi[..., 2 * H:3 * H] + r * gh[..., 2 * H:3 * H])
        return (1.0 - z) * n + z * h_prev

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRU(Module):
    """Multi-step GRU over ``(B, T, D)`` input (used by the FinGAT baseline)."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        gen = rng if rng is not None else get_rng()
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            self.add_module(f"cell{layer}",
                            GRUCell(in_size, hidden_size, rng=gen))

    def forward(self, x: Tensor, h0: Optional[Tensor] = None
                ) -> Tuple[Tensor, Tensor]:
        if x.ndim != 3:
            raise ValueError(f"GRU expects (B, T, D) input, got {x.shape}")
        batch, steps, _ = x.shape
        layer_input = [x[:, t, :] for t in range(steps)]
        h = None
        for layer in range(self.num_layers):
            cell: GRUCell = self._modules[f"cell{layer}"]
            h = h0 if (h0 is not None and layer == 0 and self.num_layers == 1) \
                else cell.initial_state(batch)
            outputs = []
            for step_x in layer_input:
                h = cell(step_x, h)
                outputs.append(h)
            layer_input = outputs
        return stack(layer_input, axis=1), h
