"""Neural-network layer library built on :mod:`repro.tensor`.

Provides the module system plus every layer family the reproduction needs:
affine, 1-D/causal/weight-normalized convolution, temporal residual blocks,
graph convolution and attention, LSTM/GRU/SFM recurrences, normalization,
dropout, and initialization utilities.
"""

from .activation import ELU, LeakyReLU, ReLU, Sigmoid, Tanh
from .container import ModuleList, Sequential
from .conv import (CausalConv1d, CausalWeightNormConv1d, Conv1d,
                   WeightNormConv1d)
from .dropout import Dropout, SpatialDropout1d
from .graph import GraphAttention, GraphConv, set_graph_mode
from .linear import Linear
from .module import LoadStateResult, Module, Parameter
from .norm import BatchNorm1d, LayerNorm
from .random import fork_rng, get_rng, manual_seed
from .recurrent import GRU, GRUCell, LSTM, LSTMCell
from .sfm import SFM, SFMCell
from .temporal import TemporalBlock, TemporalConvNet
from . import init

__all__ = [
    "Module", "Parameter", "LoadStateResult", "Sequential", "ModuleList",
    "Linear", "Conv1d", "CausalConv1d", "WeightNormConv1d",
    "CausalWeightNormConv1d", "TemporalBlock", "TemporalConvNet",
    "GraphConv", "GraphAttention", "set_graph_mode",
    "LSTM", "LSTMCell", "GRU", "GRUCell", "SFM", "SFMCell",
    "Dropout", "SpatialDropout1d", "LayerNorm", "BatchNorm1d",
    "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "ELU",
    "init", "manual_seed", "get_rng", "fork_rng",
]
