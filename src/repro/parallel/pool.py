"""Fault-tolerant multi-process task pool for experiment fan-out.

:class:`ExperimentPool` runs a set of *task ids* through a ``task_fn``
across N worker processes.  It is built for the evaluation protocol's
workload — independent, self-seeded runs whose results must be
bitwise-identical to serial execution — so its contract is deliberately
narrow:

- **fork start method.**  Workers are forked, never spawned, so
  ``task_fn`` may be an arbitrary closure (the protocol's ``one_run``
  captures a model factory and a dataset) and the dataset arrays are
  shared copy-on-write instead of being re-pickled per run.  Only task
  ids (small picklables) travel parent→worker and result payloads travel
  worker→parent.
- **Per-worker pipes, not one shared queue.**  Each worker owns a task
  pipe and an event pipe.  When a worker dies mid-write, only its own
  pipe is poisoned; the pool discards the whole worker and its channel,
  so one SIGKILL can never corrupt another worker's result stream.
- **Crashes are retried, exceptions are not.**  A worker that dies
  (SIGKILL, OOM, ``os._exit``) or hangs past ``task_timeout`` takes no
  result with it: its task is re-queued and retried up to
  ``max_attempts`` times (the runs are deterministic, so a retry
  produces the identical result).  A Python *exception* in ``task_fn``
  is a deterministic bug, not an infrastructure fault — it propagates
  immediately as :class:`TaskFailedError` with the worker traceback.
- **Deterministic aggregation.**  Results are keyed by task id; callers
  assemble them in task order, so the scheduling order (which is
  timing-dependent) never leaks into the output.

See ``docs/parallelism.md`` for the full design and determinism
contract.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
import warnings
from collections import deque
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Optional, Sequence

from .telemetry import PoolTelemetry

TaskFn = Callable[[Any], Any]
ResultHook = Callable[[Any, Any], None]

#: how long the event loop sleeps in ``wait`` before re-checking worker
#: liveness; small enough that a SIGKILL is noticed promptly, large
#: enough to stay invisible in profiles
_POLL_SECONDS = 0.05


class ParallelUnavailableError(RuntimeError):
    """The platform cannot fork (e.g. Windows); run serially instead."""


class TaskFailedError(RuntimeError):
    """``task_fn`` raised inside a worker (deterministic failure).

    Carries the worker-side traceback text; retrying would reproduce the
    same exception, so the pool fails fast instead.
    """

    def __init__(self, task: Any, worker: int, worker_traceback: str):
        self.task = task
        self.worker = worker
        self.worker_traceback = worker_traceback
        super().__init__(
            f"task {task!r} raised in worker {worker}:\n{worker_traceback}")


class WorkerCrashError(RuntimeError):
    """A task's workers kept dying; the retry budget is exhausted."""

    def __init__(self, task: Any, attempts: int, detail: str):
        self.task = task
        self.attempts = attempts
        super().__init__(
            f"task {task!r} crashed its worker on all {attempts} "
            f"attempt(s) ({detail}); giving up — the task itself is "
            "killing the process (OOM? os._exit in user code?)")


def fork_available() -> bool:
    """Whether the required ``fork`` start method exists on this host."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int], n_tasks: int) -> int:
    """Normalize a worker-count request against the task count.

    ``None``/``0`` means "one per CPU"; the result is always clamped to
    ``[1, n_tasks]`` so idle workers are never forked.
    """
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), max(n_tasks, 1)))


def die_with_parent() -> None:
    """Best effort: have the kernel kill this worker when its parent dies.

    Without it, SIGKILLing a pool's parent (which bypasses every Python
    cleanup path) orphans the workers mid-task; they would finish their
    run, fail the pipe write, and only then exit — holding inherited
    file descriptors open the whole time.  ``PR_SET_PDEATHSIG`` is
    Linux-only, hence the broad except: elsewhere orphans still exit at
    their next pipe operation, just not instantly.

    Shared worker-lifecycle machinery: called by the experiment pool's
    forked workers *and* by the serving cluster's inference workers
    (:mod:`repro.serve.cluster`).
    """
    try:
        import ctypes
        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, int(signal.SIGKILL))
        if os.getppid() == 1:          # parent died before prctl took
            os._exit(1)
    except Exception:                   # pragma: no cover - non-Linux
        pass


#: historical spelling, kept for forks of the pool internals
_die_with_parent = die_with_parent


def _worker_main(slot: int, task_conn, event_conn, task_fn: TaskFn) -> None:
    """Worker loop: recv task id, run it, send one event per task.

    Runs in the forked child.  Exits on the ``None`` sentinel.  Events:
    ``("done", slot, task, payload, seconds)`` or
    ``("fail", slot, task, traceback_text, seconds)``.
    """
    die_with_parent()
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):        # parent went away
            return
        if task is None:
            return
        started = time.perf_counter()
        try:
            payload = task_fn(task)
        except BaseException:
            event_conn.send(("fail", slot, task, traceback.format_exc(),
                             time.perf_counter() - started))
        else:
            event_conn.send(("done", slot, task, payload,
                             time.perf_counter() - started))


class WorkerHandle:
    """Parent-side view of one forked worker slot: process + two pipes.

    Generic worker-lifecycle helper (PR 8 extracted it from the
    experiment pool so the serving cluster can reuse the exact
    PDEATHSIG/respawn-tested plumbing).  ``target`` runs in the forked
    child as ``target(slot, task_conn, event_conn, *args)``; the parent
    keeps the task-write and event-read ends.  Each worker owns its own
    pipe pair, so a worker dying mid-write can only poison its own
    channel, never a sibling's result stream.
    """

    def __init__(self, ctx, slot: int, target: Callable[..., None],
                 args: Sequence[Any] = (),
                 name_prefix: str = "repro-worker"):
        self.slot = slot
        self.target = target
        self.args = tuple(args)
        self.name_prefix = name_prefix
        # duplex=False: (read end, write end).  Parent keeps task_w and
        # event_r; the child uses its fork-inherited task_r / event_w.
        task_r, self.task_w = ctx.Pipe(duplex=False)
        self.event_r, event_w = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=target, args=(slot, task_r, event_w, *self.args),
            daemon=True, name=f"{name_prefix}-{slot}")
        self.process.start()
        # The child inherited its ends over fork; drop the parent's
        # copies so a dead child turns into EOF instead of a hang.
        task_r.close()
        event_w.close()
        self.current: Any = None           # task id in flight, or None
        self.dispatched_at: float = 0.0
        self.broken = False                # event pipe poisoned mid-write

    def respawn(self, ctx) -> "WorkerHandle":
        """A fresh handle for the same slot (kill/join/close this one)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.close()
        return type(self)(ctx, self.slot, self.target, self.args,
                          self.name_prefix)

    def close(self) -> None:
        for conn in (self.task_w, self.event_r):
            try:
                conn.close()
            except OSError:                 # pragma: no cover
                pass


class _WorkerHandle(WorkerHandle):
    """The experiment pool's worker slot: runs ``_worker_main(task_fn)``."""

    def __init__(self, ctx, slot: int, task_fn: TaskFn):
        self.task_fn = task_fn
        super().__init__(ctx, slot, _worker_main, args=(task_fn,),
                         name_prefix="repro-parallel")

    def respawn(self, ctx) -> "_WorkerHandle":
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.close()
        return _WorkerHandle(ctx, self.slot, self.task_fn)


class ExperimentPool:
    """Fan tasks out across forked workers with bounded crash retries.

    Parameters
    ----------
    workers:
        Worker process count (see :func:`resolve_workers` semantics).
    task_fn:
        ``task_fn(task_id) -> picklable payload``, executed in a forked
        worker.  Closures are fine — fork inherits them.
    max_attempts:
        How many times one task may crash/hang its worker before
        :class:`WorkerCrashError` aborts the pool (default 3).
    task_timeout:
        Seconds before an in-flight task is declared hung, its worker
        killed, and the task retried.  ``None`` (default) disables hang
        detection.
    """

    def __init__(self, workers: Optional[int], task_fn: TaskFn, *,
                 max_attempts: int = 3,
                 task_timeout: Optional[float] = None):
        if not fork_available():
            raise ParallelUnavailableError(
                "repro.parallel requires the 'fork' start method; this "
                "platform offers only "
                f"{multiprocessing.get_all_start_methods()} — run with "
                "workers=1 instead")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got "
                             f"{max_attempts}")
        self.requested_workers = workers
        self.task_fn = task_fn
        self.max_attempts = max_attempts
        self.task_timeout = task_timeout
        self._ctx = multiprocessing.get_context("fork")
        self._handles: List[_WorkerHandle] = []
        self.telemetry = PoolTelemetry(workers=0)

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Any],
            on_result: Optional[ResultHook] = None) -> Dict[Any, Any]:
        """Execute every task; returns ``{task_id: payload}``.

        ``on_result(task_id, payload)`` fires in the parent as each
        result arrives (completion order), which is what lets the
        experiment journal record finished runs while others are still
        training.  Raises :class:`TaskFailedError` on a worker-side
        exception and :class:`WorkerCrashError` when one task exhausts
        its crash budget; either way all workers are torn down.
        """
        tasks = list(tasks)
        if len(set(tasks)) != len(tasks):
            raise ValueError("duplicate task ids")
        if not tasks:
            self.telemetry = PoolTelemetry(workers=0)
            return {}
        n_workers = resolve_workers(self.requested_workers, len(tasks))
        self.telemetry = PoolTelemetry(workers=n_workers)
        self._results: Dict[Any, Any] = {}
        self._pending: deque = deque(tasks)
        self._attempts: Dict[Any, int] = {task: 0 for task in tasks}
        self._on_result = on_result
        started = time.perf_counter()
        self._handles = [_WorkerHandle(self._ctx, slot, self.task_fn)
                         for slot in range(n_workers)]
        failed = False
        try:
            while len(self._results) < len(tasks):
                self._dispatch()
                self._pump_events()
                self._reap()
        except BaseException:
            failed = True
            raise
        finally:
            self.telemetry.wall_seconds = time.perf_counter() - started
            self._shutdown(force=failed)
        return self._results

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Hand pending tasks to idle workers (one in flight each)."""
        self.telemetry.observe_queue_depth(len(self._pending))
        for handle in self._handles:
            if handle.current is not None or not self._pending:
                continue
            task = self._pending.popleft()
            try:
                handle.task_w.send(task)
            except OSError:
                # The worker died between tasks; the retry does not count
                # against the task (it never started running there).
                self._pending.appendleft(task)
                self._replace(handle)
                continue
            self._attempts[task] += 1
            handle.current = task
            handle.dispatched_at = time.perf_counter()

    def _pump_events(self) -> None:
        """Wait briefly for worker events and fold them into results."""
        conns = {handle.event_r: handle for handle in self._handles
                 if handle.current is not None and not handle.broken}
        if not conns:
            if any(h.current is not None for h in self._handles):
                time.sleep(_POLL_SECONDS)   # only broken workers remain
            return
        for conn in _wait_connections(list(conns), timeout=_POLL_SECONDS):
            handle = conns[conn]
            try:
                event = conn.recv()
            except (EOFError, OSError):
                # The worker died mid-write (or before writing): its
                # channel is unusable.  _reap retries the task.
                handle.broken = True
                continue
            self._apply_event(handle, event)

    def _apply_event(self, handle: _WorkerHandle, event: tuple) -> None:
        kind, slot, task, payload, seconds = event
        handle.current = None
        if kind == "done":
            self._results[task] = payload
            self.telemetry.record_task(task, slot, seconds,
                                       self._attempts[task])
            if self._on_result is not None:
                self._on_result(task, payload)
        else:
            raise TaskFailedError(task, slot, payload)

    def _reap(self) -> None:
        """Detect dead or hung workers and retry their tasks."""
        now = time.perf_counter()
        for handle in self._handles:
            if handle.current is None:
                continue
            if handle.broken or not handle.process.is_alive():
                # A completed result may still sit in the pipe: the
                # worker wrote it, then died before getting a new task.
                if not handle.broken and handle.event_r.poll():
                    try:
                        event = handle.event_r.recv()
                    except (EOFError, OSError):
                        event = None
                    if event is not None:
                        self._apply_event(handle, event)
                        self._replace(handle)
                        continue
                self.telemetry.crashes += 1
                self._retry_or_raise(
                    handle, f"exit code {handle.process.exitcode}")
            elif (self.task_timeout is not None
                  and now - handle.dispatched_at > self.task_timeout):
                handle.process.kill()
                handle.process.join()
                self.telemetry.timeouts += 1
                self._retry_or_raise(
                    handle,
                    f"hung past task_timeout={self.task_timeout:g}s")

    def _retry_or_raise(self, handle: _WorkerHandle, detail: str) -> None:
        task = handle.current
        if self._attempts[task] >= self.max_attempts:
            raise WorkerCrashError(task, self._attempts[task], detail)
        warnings.warn(
            f"repro.parallel: worker {handle.slot} lost task {task!r} "
            f"({detail}); retrying (attempt {self._attempts[task]}/"
            f"{self.max_attempts})", RuntimeWarning, stacklevel=4)
        self.telemetry.retries += 1
        self._pending.appendleft(task)
        self._replace(handle)

    def _replace(self, handle: _WorkerHandle) -> None:
        """Respawn a dead worker in the same slot, fresh pipes and all."""
        self._handles[handle.slot] = handle.respawn(self._ctx)

    def _shutdown(self, force: bool = False) -> None:
        """Stop every worker: sentinel when idle, terminate otherwise."""
        for handle in self._handles:
            graceful = (not force and handle.current is None
                        and handle.process.is_alive())
            if graceful:
                try:
                    handle.task_w.send(None)
                except OSError:
                    graceful = False
            if not graceful and handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + 5.0
        for handle in self._handles:
            handle.process.join(timeout=max(deadline - time.monotonic(),
                                            0.1))
            if handle.process.is_alive():   # pragma: no cover - stuck
                handle.process.kill()
                handle.process.join(timeout=1.0)
            handle.close()
        self._handles = []
