"""Pool telemetry: per-run and per-worker stats as a schema-v1 report.

The executor records, while it runs, exactly what an operator needs to
judge a sweep's health: how busy each worker was, how deep the task
queue got, how many attempts each run took, and how long each run's
successful attempt lasted.  :meth:`PoolTelemetry.report` folds all of it
into the standard :class:`repro.obs.RunReport` (schema version 1) so
parallel sweeps leave the same machine-readable artifacts as profiles
and benchmarks:

- ``phases`` — one ``worker-<slot>`` entry per worker slot with its
  completed-task ``count`` and busy ``seconds``;
- ``ops`` — one row per task: ``{"op": "task-<id>", "pass": "run",
  "count": <attempts>, "seconds": <wall>, "bytes": 0}``;
- ``metrics`` — pool-level scalars (wall seconds, utilization, retries,
  crashes, timeouts, max queue depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..obs.metrics import RunReport, new_run_id


@dataclass
class PoolTelemetry:
    """Counters filled in by :class:`~repro.parallel.ExperimentPool`."""

    workers: int
    wall_seconds: float = 0.0
    crashes: int = 0
    timeouts: int = 0
    retries: int = 0
    max_queue_depth: int = 0
    #: task id → stats of the successful attempt
    task_stats: Dict[Any, Dict[str, float]] = field(default_factory=dict)
    #: worker slot → cumulative busy seconds over completed tasks
    worker_busy: Dict[int, float] = field(default_factory=dict)
    #: worker slot → completed task count
    worker_tasks: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def observe_queue_depth(self, depth: int) -> None:
        self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_task(self, task: Any, slot: int, seconds: float,
                    attempts: int) -> None:
        self.task_stats[task] = {"worker": slot,
                                 "seconds": float(seconds),
                                 "attempts": int(attempts)}
        self.worker_busy[slot] = (self.worker_busy.get(slot, 0.0)
                                  + float(seconds))
        self.worker_tasks[slot] = self.worker_tasks.get(slot, 0) + 1

    # ------------------------------------------------------------------
    def utilization(self) -> Dict[int, float]:
        """Busy fraction of the pool's wall clock, per worker slot."""
        if self.wall_seconds <= 0.0:
            return {slot: 0.0 for slot in range(self.workers)}
        return {slot: self.worker_busy.get(slot, 0.0) / self.wall_seconds
                for slot in range(self.workers)}

    def mean_utilization(self) -> float:
        util = self.utilization()
        return sum(util.values()) / len(util) if util else 0.0

    def report(self, kind: str = "parallel",
               config: Optional[Dict[str, Any]] = None,
               run_id: Optional[str] = None) -> RunReport:
        """This pool run as a schema-v1 :class:`~repro.obs.RunReport`."""
        phases = {f"worker-{slot}": {
                      "count": self.worker_tasks.get(slot, 0),
                      "seconds": self.worker_busy.get(slot, 0.0)}
                  for slot in range(self.workers)}
        ops = [{"op": f"task-{task}", "pass": "run",
                "count": stat["attempts"], "seconds": stat["seconds"],
                "bytes": 0}
               for task, stat in sorted(self.task_stats.items(),
                                        key=lambda kv: str(kv[0]))]
        metrics = {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "tasks_completed": len(self.task_stats),
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "max_queue_depth": self.max_queue_depth,
            "utilization_mean": self.mean_utilization(),
            "busy_seconds_total": sum(self.worker_busy.values()),
        }
        return RunReport(
            run_id=run_id if run_id is not None else new_run_id(kind),
            kind=kind, config=dict(config or {}), phases=phases, ops=ops,
            metrics=metrics)
