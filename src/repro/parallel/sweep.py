"""Parallel (model × market × seed) sweep orchestration.

The paper's evaluation protocol is embarrassingly parallel: Table IV
alone is ~10 models × 3 markets × 15 seeded runs, and every cell of that
matrix is an independent, self-seeded training run.
:func:`run_experiments_parallel` flattens the whole matrix into single
``(model, market, run_index)`` tasks and fans them out through one
:class:`~repro.parallel.ExperimentPool`, so a 4-worker sweep keeps all
four cores busy even while the last long model of one market is
finishing.

Determinism contract: each run's seed is ``base_seed * 1000 +
run_index`` and the predictor is built by the same
:func:`repro.baselines.make_predictor` call as the serial protocol, so
every per-cell :class:`~repro.eval.ExperimentResult` is bitwise-equal to
what :func:`repro.eval.run_named_experiment` produces serially.

Datasets are loaded once in the parent *before* the workers fork, so the
feature/relation arrays are shared copy-on-write — never re-pickled per
run.  With ``resume_dir``, each cell journals its completed runs through
the protocol's fingerprinted journal; a killed sweep resumes with only
the missing runs.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from itertools import product
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .pool import ExperimentPool, fork_available, resolve_workers


@dataclass(frozen=True)
class RunSpec:
    """One schedulable unit: a single seeded run of one model/market."""

    model: str
    market: str
    run_index: int
    seed: int


@dataclass
class SweepResult:
    """Per-cell experiment results plus executor telemetry."""

    #: ``(model, market) -> ExperimentResult`` (bitwise-equal to serial)
    results: Dict[Tuple[str, str], "object"]
    workers: int
    wall_seconds: float
    #: schema-v1 executor report dict (``None`` for fully-journaled or
    #: serial sweeps)
    telemetry: Optional[Dict[str, object]] = field(default=None,
                                                   repr=False)
    #: runs actually trained this invocation (0 when the journal/store
    #: already held every row — the dedup acceptance criterion)
    executed: int = 0
    #: runs restored from the journal and/or experiment store
    restored: int = 0

    def cells(self) -> List[Tuple[str, str]]:
        return list(self.results)

    def table_rows(self, metrics: Sequence[str] = ("MRR", "IRR-1",
                                                   "IRR-5", "IRR-10")
                   ) -> List[List[object]]:
        """``[market, model, *metric means]`` rows in sweep order."""
        rows = []
        for (model, market), result in self.results.items():
            rows.append([market, model]
                        + [result.mean(metric) for metric in metrics])
        return rows


def run_experiments_parallel(
        models: Sequence[str], markets: Sequence[str], *,
        config: Optional["object"] = None, n_runs: int = 3,
        base_seed: int = 0, workers: Optional[int] = None,
        dataset_seed: int = 0, top_ns: Sequence[int] = (1, 5, 10),
        resume_dir: Optional[Union[str, Path]] = None,
        telemetry_dir: Optional[Union[str, Path]] = None,
        max_attempts: int = 3, task_timeout: Optional[float] = None,
        store: Optional[object] = None, dedup: bool = True
        ) -> SweepResult:
    """Run every (model, market) cell ``n_runs`` times, in parallel.

    Parameters mirror :func:`repro.eval.run_named_experiment`; the sweep
    simply schedules all cells' runs through one worker pool instead of
    nesting sequential loops.  ``workers=None`` uses one worker per CPU
    (capped at the number of runs); ``workers=1`` — or a platform
    without ``fork`` — degrades to a serial loop with identical results.

    ``store`` (an :class:`~repro.store.ExperimentStore` or a path)
    writes every completed run through the experiment database, and with
    ``dedup=True`` restores runs already stored under each cell's config
    fingerprint instead of executing them: re-running a finished sweep
    trains nothing and returns identical (bitwise) metrics straight from
    sqlite.  ``dedup=False`` forces re-execution (results overwrite the
    stored rows).  See docs/experiment-store.md.

    Returns a :class:`SweepResult` whose per-cell
    :class:`~repro.eval.ExperimentResult` objects are bitwise-equal to
    serial ``run_named_experiment`` calls (``last_result`` is not
    carried across processes and is always ``None`` here).
    """
    from ..baselines.registry import get_spec, make_predictor
    from ..core.trainer import TrainConfig
    from ..data import load_market
    from ..eval.metrics import ranking_metrics
    from ..eval.protocol import (ExperimentResult, _experiment_fingerprint,
                                 _ExperimentJournal, _fingerprint_payload)

    models = [str(m) for m in models]
    markets = [str(m) for m in markets]
    if not models or not markets:
        raise ValueError("models and markets must both be non-empty")
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    base = config if config is not None else TrainConfig()
    adapted = {model: get_spec(model).adapt_config(base)
               for model in models}
    can_rank = {model: get_spec(model).can_rank for model in models}

    started = time.perf_counter()
    # Load every market once in the parent; forked workers inherit the
    # arrays copy-on-write instead of re-pickling them per run.
    datasets = {market: load_market(market, seed=dataset_seed)
                for market in markets}

    cells = [(model, market) for market in markets for model in models]
    fingerprints = {model: _experiment_fingerprint(adapted[model], n_runs,
                                                   base_seed)
                    for model in models}
    fields = {model: _fingerprint_payload(adapted[model], n_runs, base_seed)
              for model in models}
    journals = {}
    rows: Dict[Tuple[str, str], Dict[int, Dict[str, object]]] = {
        cell: {} for cell in cells}
    if resume_dir is not None:
        for model, market in cells:
            journal = _ExperimentJournal(
                resume_dir, f"{model}@{market}", n_runs, base_seed,
                fingerprints[model], fingerprint_fields=fields[model])
            journals[(model, market)] = journal
            rows[(model, market)] = {
                index: row for index, row in journal.rows.items()
                if 0 <= index < n_runs}

    store_sink = None
    if store is not None:
        from ..store import StoreSink

        store_sink = StoreSink(store)
        if dedup:
            for model, market in cells:
                stored = store_sink.store.completed_runs(
                    fingerprints[model], f"{model}@{market}")
                for index, stored_run in stored.items():
                    if 0 <= index < n_runs:
                        rows[(model, market)].setdefault(index, {
                            "metrics": dict(stored_run.metrics),
                            "train_seconds": stored_run.train_seconds,
                            "test_seconds": stored_run.test_seconds})

    specs: List[RunSpec] = []
    for model, market in cells:
        for run_index in range(n_runs):
            if run_index not in rows[(model, market)]:
                specs.append(RunSpec(model, market, run_index,
                                     base_seed * 1000 + run_index))
    restored = len(cells) * n_runs - len(specs)

    def run_spec(task: int):
        spec = specs[task]
        dataset = datasets[spec.market]
        run_cfg = replace(adapted[spec.model], seed=spec.seed)
        predictor = make_predictor(spec.model, dataset, seed=spec.seed)
        result = predictor.fit_predict(dataset, run_cfg)
        metrics = ranking_metrics(result.predictions, result.actuals,
                                  top_ns=top_ns)
        if not can_rank[spec.model]:
            metrics["MRR"] = float("nan")
        return (metrics, float(result.train_seconds),
                float(result.test_seconds))

    def on_result(task: int, payload) -> None:
        spec = specs[task]
        metrics, train_s, test_s = payload
        rows[(spec.model, spec.market)][spec.run_index] = {
            "metrics": metrics, "train_seconds": train_s,
            "test_seconds": test_s}
        journal = journals.get((spec.model, spec.market))
        if journal is not None:
            journal.record(spec.run_index, metrics, train_s, test_s)
        if store_sink is not None:
            from ..store import RunRecord

            store_sink.write_run(RunRecord(
                experiment=f"{spec.model}@{spec.market}",
                run_index=spec.run_index, metrics=dict(metrics),
                train_seconds=train_s, test_seconds=test_s,
                fingerprint=fingerprints[spec.model], seed=spec.seed,
                config=asdict(adapted[spec.model]), n_runs=n_runs,
                base_seed=base_seed))

    n_workers = resolve_workers(workers, len(specs))
    telemetry = None
    if specs:
        if n_workers > 1 and fork_available():
            pool = ExperimentPool(n_workers, run_spec,
                                  max_attempts=max_attempts,
                                  task_timeout=task_timeout)
            pool.run(list(range(len(specs))), on_result=on_result)
            report = pool.telemetry.report(
                kind="parallel",
                config={"sweep": {"models": models, "markets": markets,
                                  "n_runs": n_runs,
                                  "base_seed": base_seed},
                        "workers": pool.telemetry.workers,
                        "tasks": [[s.model, s.market, s.run_index]
                                  for s in specs]})
            telemetry = report.to_dict()
            if telemetry_dir is not None:
                from ..obs import MetricsSink
                MetricsSink(telemetry_dir).write(report)
            if store_sink is not None:
                store_sink.write_report(report)
        else:
            n_workers = 1
            for task in range(len(specs)):
                on_result(task, run_spec(task))

    results: Dict[Tuple[str, str], ExperimentResult] = {}
    for model, market in cells:
        ordered = [rows[(model, market)][index]
                   for index in range(n_runs)]
        results[(model, market)] = ExperimentResult(
            name=f"{model}@{market}",
            runs=[dict(row["metrics"]) for row in ordered],
            train_seconds=[float(row["train_seconds"])
                           for row in ordered],
            test_seconds=[float(row["test_seconds"]) for row in ordered])
    return SweepResult(results=results, workers=n_workers,
                       wall_seconds=time.perf_counter() - started,
                       telemetry=telemetry, executed=len(specs),
                       restored=restored)
