"""repro.parallel — multi-process experiment execution.

A fault-tolerant, deterministic fan-out executor for the evaluation
protocol's embarrassingly parallel workloads (repeated seeded runs,
model × market sweeps, hyperparameter grids):

- :class:`ExperimentPool` — forked worker processes with per-worker
  pipes, bounded crash/hang retries, and schema-v1 telemetry;
- :func:`run_experiments_parallel` / :class:`SweepResult` — the
  (model × market × seed) sweep behind ``repro.cli sweep``;
- :class:`PoolTelemetry` — worker utilization, queue depth, retry
  counts, and per-run wall time as a :class:`repro.obs.RunReport`.

Entry points one layer up: ``run_experiment(..., workers=N)`` /
``run_named_experiment(..., workers=N)`` and
``grid_search(..., workers=N)`` in :mod:`repro.eval`, and
``RTGCN_BENCH_WORKERS`` for the benchmarks.  The determinism contract —
parallel results bitwise-equal to serial — is documented in
``docs/parallelism.md``.
"""

from .pool import (ExperimentPool, ParallelUnavailableError,
                   TaskFailedError, WorkerCrashError, WorkerHandle,
                   die_with_parent, fork_available, resolve_workers)
from .sweep import RunSpec, SweepResult, run_experiments_parallel
from .telemetry import PoolTelemetry

__all__ = [
    "ExperimentPool", "PoolTelemetry",
    "ParallelUnavailableError", "TaskFailedError", "WorkerCrashError",
    "WorkerHandle", "die_with_parent",
    "fork_available", "resolve_workers",
    "RunSpec", "SweepResult", "run_experiments_parallel",
]
