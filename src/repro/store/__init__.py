"""repro.store — the queryable sqlite experiment database.

One WAL-mode sqlite3 file (stdlib only) replaces the three bespoke
result substrates that grew across PRs 1–5: journal-v2 resume files,
schema-v1 JSON telemetry, and raw ``benchmarks/results`` dumps.  Runs
are keyed by the protocol's sha256 config fingerprint, which is what
makes **dedup-by-fingerprint** work: re-running a sweep executes only
the configs not already stored (see docs/experiment-store.md).

Layers
------
- :mod:`~repro.store.schema` — DDL, schema version, natural keys;
- :mod:`~repro.store.db` — :class:`ExperimentStore`: fork-safe
  connections, concurrent-writer-ready write verbs;
- :mod:`~repro.store.query` — typed reads (:class:`StoredRun`,
  :class:`AggregateRow`) and the ``--format {table,json,csv}``
  renderers;
- :mod:`~repro.store.sink` — the :class:`ResultSink` protocol
  (:class:`StoreSink` / :class:`JsonSink` / :class:`TeeSink`) every
  result producer now writes through;
- :mod:`~repro.store.callback` — :class:`StoreCallback`, the
  ``Trainer.fit`` write-through (per-epoch losses land in the database
  as they happen);
- :mod:`~repro.store.migrate` — idempotent ingestion of the legacy
  formats (``repro.cli db migrate``).
"""

from .callback import StoreCallback, fallback_fingerprint
from .db import ExperimentStore, StoreError
from .migrate import MigrationStats, detect_format, migrate, migrate_file
from .query import (DEFAULT_METRICS, AggregateRow, StoredRun,
                    aggregate_runs, metric_names, query_runs, render_rows,
                    store_report)
from .schema import STORE_SCHEMA_VERSION, split_experiment
from .sink import (JsonSink, ResultSink, RunRecord, StoreSink, TeeSink,
                   bench_envelope, run_record_from_result,
                   sanitize_payload, speed_record)

__all__ = [
    "AggregateRow", "DEFAULT_METRICS", "ExperimentStore", "JsonSink",
    "MigrationStats", "ResultSink", "RunRecord", "STORE_SCHEMA_VERSION",
    "StoreCallback", "StoreError", "StoreSink", "StoredRun", "TeeSink",
    "aggregate_runs", "bench_envelope", "detect_format",
    "fallback_fingerprint", "metric_names", "migrate", "migrate_file",
    "query_runs", "render_rows", "run_record_from_result",
    "sanitize_payload", "speed_record", "split_experiment",
    "store_report",
]
