"""Ingest the legacy result substrates into the experiment store.

Three on-disk formats predate the store, and each is detected by shape,
not by filename:

- **journal-v2** (``experiment-*.json``): ``{"version": 2, "key":
  {name, n_runs, base_seed, fingerprint}, "runs": [...]}`` — becomes
  ``configs`` + ``runs`` + ``metrics`` rows with ``source =
  'journal-v2'``;
- **schema-v1 reports** (``repro.obs`` ``<run_id>.json``): pool /
  serving / profile telemetry — becomes a ``telemetry`` row keyed by the
  report's ``run_id``;
- **bench artifacts** (``benchmarks/results/*.json``): the
  ``publish_json`` envelope (``schema_version`` + ``benchmark``) —
  becomes a ``telemetry`` row keyed by ``bench:<name>``.

Every insert is an UPSERT on the natural key, so migration is
idempotent: re-running it over the same directory changes nothing, and
a journal migrated twice still holds one row per run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .db import ExperimentStore
from .schema import split_experiment


@dataclass
class MigrationStats:
    """What one migration pass ingested (and what it refused)."""

    journals: int = 0
    runs: int = 0
    reports: int = 0
    benches: int = 0
    skipped: List[str] = field(default_factory=list)

    def merge(self, other: "MigrationStats") -> None:
        self.journals += other.journals
        self.runs += other.runs
        self.reports += other.reports
        self.benches += other.benches
        self.skipped.extend(other.skipped)

    def to_dict(self) -> Dict[str, Any]:
        return {"journals": self.journals, "runs": self.runs,
                "reports": self.reports, "benches": self.benches,
                "skipped": list(self.skipped)}


def detect_format(payload: Any) -> Optional[str]:
    """``'journal-v2' | 'obs-report' | 'bench-json' | None`` by shape."""
    if not isinstance(payload, dict):
        return None
    if payload.get("version") == 2 and isinstance(payload.get("key"), dict):
        return "journal-v2"
    if "schema_version" in payload:
        if "benchmark" in payload:
            return "bench-json"
        if "run_id" in payload and "kind" in payload:
            return "obs-report"
    return None


def migrate_journal_payload(store: ExperimentStore,
                            payload: Dict[str, Any]) -> MigrationStats:
    """One parsed journal-v2 document into configs/runs/metrics rows."""
    stats = MigrationStats(journals=1)
    key = payload["key"]
    name = str(key.get("name", "unknown"))
    fingerprint = key.get("fingerprint")
    if not fingerprint:
        # Pre-fingerprint journals still need a stable natural key.
        import hashlib
        blob = json.dumps(key, sort_keys=True, default=str)
        fingerprint = ("journal-"
                       + hashlib.sha256(blob.encode()).hexdigest()[:16])
    fields = payload.get("fingerprint_fields")
    config = fields.get("config") if isinstance(fields, dict) else None
    with store.transaction():
        store.record_config(fingerprint, config,
                            n_runs=key.get("n_runs"),
                            base_seed=key.get("base_seed"))
        for row in payload.get("runs", []):
            run_index = int(row["run_index"])
            base_seed = key.get("base_seed")
            seed = (base_seed * 1000 + run_index
                    if base_seed is not None else None)
            store.record_run(
                name, fingerprint, run_index,
                {k: float(v) for k, v in row.get("metrics", {}).items()},
                seed=seed,
                train_seconds=row.get("train_seconds"),
                test_seconds=row.get("test_seconds"),
                source="journal-v2", config=config,
                n_runs=key.get("n_runs"), base_seed=base_seed)
            stats.runs += 1
    return stats


def migrate_file(store: ExperimentStore, path: Union[str, Path]
                 ) -> MigrationStats:
    """Ingest one JSON file, dispatching on its detected format."""
    path = Path(path)
    stats = MigrationStats()
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        stats.skipped.append(f"{path}: unreadable ({exc})")
        return stats
    fmt = detect_format(payload)
    if fmt == "journal-v2":
        stats.merge(migrate_journal_payload(store, payload))
    elif fmt == "obs-report":
        store.record_report(payload)
        stats.reports += 1
    elif fmt == "bench-json":
        store.record_report(payload, kind="benchmark",
                            report_id=f"bench:{payload['benchmark']}")
        stats.benches += 1
    else:
        stats.skipped.append(f"{path}: unrecognized format")
    return stats


def migrate(store: ExperimentStore,
            sources: Iterable[Union[str, Path]]) -> MigrationStats:
    """Ingest files and/or directories (directories scan ``*.json``,
    non-recursively) into ``store``; returns cumulative stats."""
    stats = MigrationStats()
    for source in sources:
        source = Path(source)
        if source.is_dir():
            for path in sorted(source.glob("*.json")):
                stats.merge(migrate_file(store, path))
        elif source.exists():
            stats.merge(migrate_file(store, source))
        else:
            stats.skipped.append(f"{source}: does not exist")
    return stats
