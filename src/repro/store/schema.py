"""The experiment store's sqlite schema (version 3).

One database file holds every result the repo produces — protocol runs,
sweep cells, grid points, bench artifacts, pool/serving telemetry — in
five relational tables plus a ``meta`` key/value table:

``configs``
    One row per *protocol fingerprint*: the sha256 digest of the
    ``TrainConfig`` + ``n_runs`` + ``base_seed`` that shapes a family of
    runs (the same digest the journal-v2 resume files carry).  The
    fingerprint is the natural key that makes dedup-by-fingerprint work:
    a re-run of a sweep looks its configs up here before executing
    anything.
``runs``
    One row per completed seeded run, unique on ``(fingerprint,
    experiment, run_index)``.  ``experiment`` is the protocol name
    (``"RT-GCN (T)@nasdaq-mini"``); when it has the ``model@market``
    shape the two halves are denormalised into their own columns so
    queries can group by market without string surgery.
``metrics``
    The run's scalar result metrics (MRR, IRR-k, ...), one row per
    metric.  ``NULL`` encodes NaN (sqlite REAL cannot hold it); readers
    surface it as ``float("nan")`` again, so classification models'
    ``MRR = NaN`` round-trips.
``epochs``
    Per-epoch mean training loss, streamed write-through from
    ``Trainer.fit`` by :class:`~repro.store.callback.StoreCallback` (or
    backfilled from a ``TrainResult``).
``checkpoints``
    Checkpoint writes (path, cursor, size, write latency, best flag) so
    artifact-size regressions are queryable next to speed regressions.
``telemetry``
    Whole schema-v1 :class:`~repro.obs.RunReport` documents — pool
    executor reports, serving rollups, benchmark artifacts — stored as
    JSON, unique on the report id so re-migration never duplicates.
``slo``  *(added in schema version 2; histogram columns in version 3)*
    One row per serving SLO evaluation window: the p99 latency budget,
    the observed p50/p95/p99, request/error/shed counts, whether the
    window was within budget, and — since version 3 — a fixed-bucket
    cumulative latency histogram (``hist_le_<ms>`` / ``hist_inf``
    columns, bounds in :data:`SLO_HIST_BUCKETS_MS`).  Percentile
    *summaries* answer "was this window fast"; the buckets let ``db
    report`` re-derive p50/p90/p99 across *any* aggregation of windows
    (summing histograms is exact; averaging percentiles is not).
    Written at cluster/server shutdown and by ``bench_serving``, so
    latency-SLO regressions are queryable next to accuracy and speed
    regressions.

Version 1 → 2 added the slo table; 2 → 3 added its histogram columns.
Both hops are additive: opening an older file with this code migrates
it in place (missing tables via the idempotent DDL, missing columns via
``ALTER TABLE ADD COLUMN``).  Opening a *newer* file than the code
understands still refuses, so a rollback never silently writes an
incomplete schema.

REAL columns store IEEE-754 doubles exactly, which is what lets the
acceptance criterion hold: metrics read back from the store are
*bitwise* equal to what the serial protocol computed.
"""

from __future__ import annotations

#: bump when a table/column is added, renamed, or removed
STORE_SCHEMA_VERSION = 3

#: versions this code can migrate *from* in place.  Every hop so far is
#: additive: re-running the idempotent DDL creates missing tables, and
#: ``_ensure_schema`` adds any missing slo histogram columns with
#: ``ALTER TABLE ADD COLUMN``; a destructive hop would add real SQL.
MIGRATABLE_VERSIONS = (1, 2)

#: upper bounds (milliseconds) of the slo latency histogram buckets.
#: Cumulative Prometheus-style "le" semantics: ``hist_le_10`` counts the
#: window's requests that finished in <= 10 ms; ``hist_inf`` counts all
#: of them.  Frozen: changing bounds would need a schema version bump.
SLO_HIST_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: executed statement-by-statement by :meth:`ExperimentStore._ensure_schema`
DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS configs (
    fingerprint TEXT PRIMARY KEY,
    config_json TEXT,
    n_runs      INTEGER,
    base_seed   INTEGER,
    created_at  TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    fingerprint   TEXT NOT NULL,
    experiment    TEXT NOT NULL,
    model         TEXT,
    market        TEXT,
    kind          TEXT NOT NULL DEFAULT 'experiment',
    run_index     INTEGER NOT NULL,
    seed          INTEGER,
    train_seconds REAL,
    test_seconds  REAL,
    source        TEXT NOT NULL DEFAULT 'live',
    created_at    TEXT NOT NULL,
    UNIQUE (fingerprint, experiment, run_index)
);

CREATE INDEX IF NOT EXISTS idx_runs_experiment ON runs (experiment);
CREATE INDEX IF NOT EXISTS idx_runs_model_market ON runs (model, market);

CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name   TEXT NOT NULL,
    value  REAL,
    PRIMARY KEY (run_id, name)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS epochs (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    epoch  INTEGER NOT NULL,
    loss   REAL,
    PRIMARY KEY (run_id, epoch)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS checkpoints (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER REFERENCES runs (id) ON DELETE SET NULL,
    path          TEXT NOT NULL,
    epoch         INTEGER,
    batch_index   INTEGER,
    bytes         INTEGER,
    write_seconds REAL,
    is_best       INTEGER NOT NULL DEFAULT 0,
    created_at    TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS telemetry (
    id          INTEGER PRIMARY KEY,
    report_id   TEXT NOT NULL UNIQUE,
    kind        TEXT NOT NULL,
    report_json TEXT NOT NULL,
    created_at  TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_telemetry_kind ON telemetry (kind);

CREATE TABLE IF NOT EXISTS slo (
    id              INTEGER PRIMARY KEY,
    report_id       TEXT,
    source          TEXT NOT NULL DEFAULT 'serve',
    op              TEXT,
    target_p99_ms   REAL,
    observed_p50_ms REAL,
    observed_p95_ms REAL,
    observed_p99_ms REAL,
    requests        INTEGER,
    errors          INTEGER,
    shed            INTEGER,
    within          INTEGER,
    hist_le_1       INTEGER,
    hist_le_2       INTEGER,
    hist_le_5       INTEGER,
    hist_le_10      INTEGER,
    hist_le_25      INTEGER,
    hist_le_50      INTEGER,
    hist_le_100     INTEGER,
    hist_le_250     INTEGER,
    hist_le_500     INTEGER,
    hist_le_1000    INTEGER,
    hist_inf        INTEGER,
    created_at      TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_slo_source ON slo (source);
"""

#: every table the DDL creates, in a stable reporting order
TABLES = ("configs", "runs", "metrics", "epochs", "checkpoints",
          "telemetry", "slo")


def slo_hist_columns() -> tuple:
    """The slo histogram column names, bucket order then ``hist_inf``."""
    return tuple(f"hist_le_{bound}" for bound in SLO_HIST_BUCKETS_MS
                 ) + ("hist_inf",)


def latency_histogram(samples_seconds) -> dict:
    """Cumulative bucket counts (column name -> count) for raw samples.

    ``samples_seconds`` are request latencies in seconds (the unit the
    serving telemetry records); bucket bounds are milliseconds.  The
    result maps every :func:`slo_hist_columns` name, so it can be fed
    straight into the slo table — and summed across windows without
    losing information, unlike pre-computed percentiles.
    """
    counts = {column: 0 for column in slo_hist_columns()}
    for sample in samples_seconds:
        ms = float(sample) * 1000.0
        for bound in SLO_HIST_BUCKETS_MS:
            if ms <= bound:
                counts[f"hist_le_{bound}"] += 1
        counts["hist_inf"] += 1
    return counts


def estimate_percentile(hist: dict, q: float) -> float:
    """Estimate the ``q``-quantile (0..1) in ms from cumulative buckets.

    Linear interpolation inside the bucket that crosses the target rank
    (0 as the lower edge of the first bucket); the overflow bucket has
    no upper bound, so anything landing there reports the last finite
    bound — a floor, honestly labelled by callers as an estimate.
    """
    total = int(hist.get("hist_inf") or 0)
    if total <= 0:
        return 0.0
    rank = q * total
    previous_bound, previous_count = 0.0, 0
    for bound in SLO_HIST_BUCKETS_MS:
        count = int(hist.get(f"hist_le_{bound}") or 0)
        if count >= rank:
            span = count - previous_count
            if span <= 0:
                return float(bound)
            fraction = (rank - previous_count) / span
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_count = float(bound), count
    return float(SLO_HIST_BUCKETS_MS[-1])


def split_experiment(experiment: str) -> tuple:
    """``"model@market" -> (model, market)``; else ``(None, None)``.

    Only the *last* ``@`` splits, so model names containing ``@`` (none
    today, but nothing forbids them) keep their prefix intact.
    """
    if "@" in experiment:
        model, _, market = experiment.rpartition("@")
        if model and market:
            return model, market
    return None, None
