"""The experiment store's sqlite schema (version 2).

One database file holds every result the repo produces — protocol runs,
sweep cells, grid points, bench artifacts, pool/serving telemetry — in
five relational tables plus a ``meta`` key/value table:

``configs``
    One row per *protocol fingerprint*: the sha256 digest of the
    ``TrainConfig`` + ``n_runs`` + ``base_seed`` that shapes a family of
    runs (the same digest the journal-v2 resume files carry).  The
    fingerprint is the natural key that makes dedup-by-fingerprint work:
    a re-run of a sweep looks its configs up here before executing
    anything.
``runs``
    One row per completed seeded run, unique on ``(fingerprint,
    experiment, run_index)``.  ``experiment`` is the protocol name
    (``"RT-GCN (T)@nasdaq-mini"``); when it has the ``model@market``
    shape the two halves are denormalised into their own columns so
    queries can group by market without string surgery.
``metrics``
    The run's scalar result metrics (MRR, IRR-k, ...), one row per
    metric.  ``NULL`` encodes NaN (sqlite REAL cannot hold it); readers
    surface it as ``float("nan")`` again, so classification models'
    ``MRR = NaN`` round-trips.
``epochs``
    Per-epoch mean training loss, streamed write-through from
    ``Trainer.fit`` by :class:`~repro.store.callback.StoreCallback` (or
    backfilled from a ``TrainResult``).
``checkpoints``
    Checkpoint writes (path, cursor, size, write latency, best flag) so
    artifact-size regressions are queryable next to speed regressions.
``telemetry``
    Whole schema-v1 :class:`~repro.obs.RunReport` documents — pool
    executor reports, serving rollups, benchmark artifacts — stored as
    JSON, unique on the report id so re-migration never duplicates.
``slo``  *(added in schema version 2)*
    One row per serving SLO evaluation window: the p99 latency budget,
    the observed p50/p95/p99, request/error/shed counts, and whether the
    window was within budget.  Written at cluster/server shutdown and by
    ``bench_serving``, so latency-SLO regressions are queryable next to
    accuracy and speed regressions.

Version 1 → 2 is purely additive (one new table); opening a v1 file
with this code migrates it in place.  Opening a *newer* file than the
code understands still refuses, so a rollback never silently writes an
incomplete schema.

REAL columns store IEEE-754 doubles exactly, which is what lets the
acceptance criterion hold: metrics read back from the store are
*bitwise* equal to what the serial protocol computed.
"""

from __future__ import annotations

#: bump when a table/column is added, renamed, or removed
STORE_SCHEMA_VERSION = 2

#: versions this code can migrate *from* in place.  Every hop so far is
#: additive (new tables only), so re-running the idempotent DDL is the
#: whole migration; a future destructive hop would add real SQL here.
MIGRATABLE_VERSIONS = (1,)

#: executed statement-by-statement by :meth:`ExperimentStore._ensure_schema`
DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS configs (
    fingerprint TEXT PRIMARY KEY,
    config_json TEXT,
    n_runs      INTEGER,
    base_seed   INTEGER,
    created_at  TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    fingerprint   TEXT NOT NULL,
    experiment    TEXT NOT NULL,
    model         TEXT,
    market        TEXT,
    kind          TEXT NOT NULL DEFAULT 'experiment',
    run_index     INTEGER NOT NULL,
    seed          INTEGER,
    train_seconds REAL,
    test_seconds  REAL,
    source        TEXT NOT NULL DEFAULT 'live',
    created_at    TEXT NOT NULL,
    UNIQUE (fingerprint, experiment, run_index)
);

CREATE INDEX IF NOT EXISTS idx_runs_experiment ON runs (experiment);
CREATE INDEX IF NOT EXISTS idx_runs_model_market ON runs (model, market);

CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name   TEXT NOT NULL,
    value  REAL,
    PRIMARY KEY (run_id, name)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS epochs (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    epoch  INTEGER NOT NULL,
    loss   REAL,
    PRIMARY KEY (run_id, epoch)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS checkpoints (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER REFERENCES runs (id) ON DELETE SET NULL,
    path          TEXT NOT NULL,
    epoch         INTEGER,
    batch_index   INTEGER,
    bytes         INTEGER,
    write_seconds REAL,
    is_best       INTEGER NOT NULL DEFAULT 0,
    created_at    TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS telemetry (
    id          INTEGER PRIMARY KEY,
    report_id   TEXT NOT NULL UNIQUE,
    kind        TEXT NOT NULL,
    report_json TEXT NOT NULL,
    created_at  TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_telemetry_kind ON telemetry (kind);

CREATE TABLE IF NOT EXISTS slo (
    id              INTEGER PRIMARY KEY,
    report_id       TEXT,
    source          TEXT NOT NULL DEFAULT 'serve',
    op              TEXT,
    target_p99_ms   REAL,
    observed_p50_ms REAL,
    observed_p95_ms REAL,
    observed_p99_ms REAL,
    requests        INTEGER,
    errors          INTEGER,
    shed            INTEGER,
    within          INTEGER,
    created_at      TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_slo_source ON slo (source);
"""

#: every table the DDL creates, in a stable reporting order
TABLES = ("configs", "runs", "metrics", "epochs", "checkpoints",
          "telemetry", "slo")


def split_experiment(experiment: str) -> tuple:
    """``"model@market" -> (model, market)``; else ``(None, None)``.

    Only the *last* ``@`` splits, so model names containing ``@`` (none
    today, but nothing forbids them) keep their prefix intact.
    """
    if "@" in experiment:
        model, _, market = experiment.rpartition("@")
        if model and market:
            return model, market
    return None, None
