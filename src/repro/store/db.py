"""``ExperimentStore``: the sqlite3 connection and write path.

Design constraints, in order:

1. **stdlib only** — ``sqlite3`` ships with CPython; no new deps.
2. **Concurrent writers** — the parallel executor forks workers that
   stream per-epoch metrics while the parent records run rows.  The
   database runs in WAL mode (readers never block the writer, writers
   queue instead of failing) with a generous ``busy_timeout``, and every
   write is one short ``BEGIN IMMEDIATE`` transaction so lock holds stay
   in the microsecond range.
3. **Fork safety** — a sqlite connection must never cross ``fork()``;
   the store therefore holds only a *path* and opens its connection
   lazily, re-opening whenever it notices it lives in a new process.
4. **Dedup by natural key** — ``runs`` is unique on ``(fingerprint,
   experiment, run_index)`` and writes are UPSERTs that keep the
   original row id, so re-recording a run can never duplicate it nor
   orphan its epoch rows.

The read side (typed rows, aggregation, report) lives in
:mod:`repro.store.query`; this module keeps the connection and the
write verbs.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .schema import (DDL, MIGRATABLE_VERSIONS, STORE_SCHEMA_VERSION,
                     TABLES, slo_hist_columns, split_experiment)

#: how long a writer waits for a competing writer before erroring (ms)
DEFAULT_BUSY_TIMEOUT_MS = 30_000


class StoreError(RuntimeError):
    """The store refused an operation (schema mismatch, bad payload)."""


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _to_db_value(value: Optional[float]) -> Optional[float]:
    """NaN/Inf -> NULL (sqlite REAL is finite-only in our contract)."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _from_db_value(value: Optional[float]) -> float:
    """NULL -> NaN, everything else verbatim (bitwise)."""
    return float("nan") if value is None else float(value)


class ExperimentStore:
    """One sqlite experiment database, safe to share across forks.

    The constructor is cheap (no I/O until first use) so a store object
    can be created in a parent process and used from forked workers —
    each process transparently gets its own connection.

    >>> store = ExperimentStore("/tmp/experiments.sqlite")
    >>> run_id = store.record_run("RT-GCN (T)@nasdaq-mini", "ab12cd",
    ...                           0, {"MRR": 0.41}, seed=0)
    """

    def __init__(self, path: Union[str, Path],
                 busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS):
        self.path = Path(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection:
        """The calling process's connection (opened/migrated on demand)."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            # A connection inherited over fork() shares file descriptors
            # and WAL state with the parent; using it corrupts both.
            # Drop it without closing (closing would checkpoint the WAL
            # from the wrong process) and open a fresh one.
            self._conn = None
            conn = sqlite3.connect(self.path, timeout=self.busy_timeout_ms
                                   / 1000.0, isolation_level=None)
            conn.row_factory = sqlite3.Row
            conn.execute(f"PRAGMA busy_timeout = {self.busy_timeout_ms}")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.execute("PRAGMA foreign_keys = ON")
            self._conn = conn
            self._conn_pid = pid
            self._ensure_schema(conn)
        return self._conn

    def close(self) -> None:
        """Close this process's connection (forked copies unaffected)."""
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        # executescript manages its own transaction (it commits any open
        # one first), so it must run outside _txn.  The DDL is idempotent
        # (CREATE ... IF NOT EXISTS), which doubles as the additive
        # migration path: opening an older, migratable file just creates
        # the tables it was missing and bumps the recorded version.
        conn.executescript(DDL)
        # v2 -> v3: the DDL cannot add columns to an existing slo table,
        # so the histogram columns are retrofitted explicitly.  The
        # PRAGMA guard makes this idempotent (and a no-op on fresh/v3
        # files).
        present = {row[1] for row in
                   conn.execute("PRAGMA table_info(slo)")}
        for column in slo_hist_columns():
            if column not in present:
                conn.execute(
                    f"ALTER TABLE slo ADD COLUMN {column} INTEGER")
        with self._txn(conn):
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(STORE_SCHEMA_VERSION)))
                return
            found = int(row["value"])
            if found == STORE_SCHEMA_VERSION:
                return
            if found in MIGRATABLE_VERSIONS:
                conn.execute(
                    "UPDATE meta SET value = ? WHERE key = "
                    "'schema_version'", (str(STORE_SCHEMA_VERSION),))
                return
            raise StoreError(
                f"{self.path} uses store schema version {found}, this "
                f"code expects {STORE_SCHEMA_VERSION} and can only "
                f"migrate from {MIGRATABLE_VERSIONS}; use a newer build "
                "or point at a fresh database")

    @contextmanager
    def _txn(self, conn: sqlite3.Connection):
        """One short IMMEDIATE transaction (queues behind other writers
        instead of deadlocking on a deferred-lock upgrade)."""
        if conn.in_transaction:
            # Nested use (e.g. _ensure_schema inside a caller's
            # transaction): join the enclosing transaction.
            yield
            return
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    @contextmanager
    def transaction(self):
        """Group several writes into one atomic commit."""
        with self._txn(self.connection):
            yield self

    # ------------------------------------------------------------------
    # write verbs
    # ------------------------------------------------------------------
    def record_config(self, fingerprint: str,
                      config: Optional[Dict[str, Any]] = None,
                      n_runs: Optional[int] = None,
                      base_seed: Optional[int] = None) -> None:
        """Register a protocol fingerprint (idempotent).

        A later call with a non-NULL ``config`` fills in a row that was
        first seen without one (e.g. migrated from a journal that only
        carried the digest), but never overwrites recorded values.
        """
        conn = self.connection
        config_json = (json.dumps(config, sort_keys=True, default=str)
                       if config is not None else None)
        with self._txn(conn):
            conn.execute(
                "INSERT INTO configs (fingerprint, config_json, n_runs,"
                " base_seed, created_at) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (fingerprint) DO UPDATE SET"
                " config_json = COALESCE(configs.config_json,"
                "                        excluded.config_json),"
                " n_runs = COALESCE(configs.n_runs, excluded.n_runs),"
                " base_seed = COALESCE(configs.base_seed,"
                "                      excluded.base_seed)",
                (fingerprint, config_json, n_runs, base_seed, _utc_now()))

    def record_run(self, experiment: str, fingerprint: str,
                   run_index: int, metrics: Dict[str, float], *,
                   seed: Optional[int] = None,
                   train_seconds: Optional[float] = None,
                   test_seconds: Optional[float] = None,
                   kind: str = "experiment", source: str = "live",
                   epoch_losses: Optional[Sequence[float]] = None,
                   config: Optional[Dict[str, Any]] = None,
                   n_runs: Optional[int] = None,
                   base_seed: Optional[int] = None) -> int:
        """Record (or re-record) one completed run; returns its row id.

        The UPSERT keeps the existing row id on conflict, so epoch rows
        streamed earlier by a :class:`StoreCallback` under the same
        natural key stay attached.
        """
        conn = self.connection
        model, market = split_experiment(experiment)
        with self._txn(conn):
            self.record_config(fingerprint, config, n_runs, base_seed)
            cursor = conn.execute(
                "INSERT INTO runs (fingerprint, experiment, model, market,"
                " kind, run_index, seed, train_seconds, test_seconds,"
                " source, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT (fingerprint, experiment, run_index)"
                " DO UPDATE SET"
                " seed = COALESCE(excluded.seed, runs.seed),"
                " kind = excluded.kind,"
                " train_seconds = COALESCE(excluded.train_seconds,"
                "                          runs.train_seconds),"
                " test_seconds = COALESCE(excluded.test_seconds,"
                "                         runs.test_seconds),"
                " source = excluded.source"
                " RETURNING id",
                (fingerprint, experiment, model, market, kind,
                 int(run_index), seed, _to_db_value(train_seconds),
                 _to_db_value(test_seconds), source, _utc_now()))
            run_id = int(cursor.fetchone()["id"])
            conn.executemany(
                "INSERT INTO metrics (run_id, name, value) VALUES (?, ?, ?)"
                " ON CONFLICT (run_id, name)"
                " DO UPDATE SET value = excluded.value",
                [(run_id, str(name), _to_db_value(value))
                 for name, value in metrics.items()])
            if epoch_losses is not None:
                conn.executemany(
                    "INSERT INTO epochs (run_id, epoch, loss)"
                    " VALUES (?, ?, ?) ON CONFLICT (run_id, epoch)"
                    " DO UPDATE SET loss = excluded.loss",
                    [(run_id, epoch, _to_db_value(loss))
                     for epoch, loss in enumerate(epoch_losses)])
        return run_id

    def start_run(self, experiment: str, fingerprint: str,
                  run_index: int, *, seed: Optional[int] = None,
                  kind: str = "train", source: str = "live",
                  config: Optional[Dict[str, Any]] = None) -> int:
        """Create (or reuse) a run row before its metrics exist.

        The write-through path: ``StoreCallback`` opens the row when a
        fit starts so per-epoch losses have a parent to stream onto.
        """
        return self.record_run(experiment, fingerprint, run_index, {},
                               seed=seed, kind=kind, source=source,
                               config=config)

    def record_epoch(self, run_id: int, epoch: int,
                     loss: Optional[float]) -> None:
        """Stream one epoch's mean loss onto an open run row."""
        conn = self.connection
        with self._txn(conn):
            conn.execute(
                "INSERT INTO epochs (run_id, epoch, loss) VALUES (?, ?, ?)"
                " ON CONFLICT (run_id, epoch)"
                " DO UPDATE SET loss = excluded.loss",
                (int(run_id), int(epoch), _to_db_value(loss)))

    def record_checkpoint(self, path: Union[str, Path], *,
                          run_id: Optional[int] = None,
                          epoch: Optional[int] = None,
                          batch_index: Optional[int] = None,
                          size_bytes: Optional[int] = None,
                          write_seconds: Optional[float] = None,
                          is_best: bool = False) -> int:
        """Record one checkpoint write; returns the checkpoint row id."""
        conn = self.connection
        with self._txn(conn):
            cursor = conn.execute(
                "INSERT INTO checkpoints (run_id, path, epoch, batch_index,"
                " bytes, write_seconds, is_best, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?) RETURNING id",
                (run_id, str(path), epoch, batch_index, size_bytes,
                 _to_db_value(write_seconds), int(bool(is_best)),
                 _utc_now()))
            return int(cursor.fetchone()["id"])

    def record_report(self, report: Any, kind: Optional[str] = None,
                      report_id: Optional[str] = None) -> str:
        """Store a schema-v1 report (or any JSON document) as telemetry.

        ``report`` may be a :class:`repro.obs.RunReport` or a plain dict.
        Re-recording the same report id replaces the document instead of
        duplicating it, which is what makes migration idempotent.
        Returns the report id used.
        """
        payload = report.to_dict() if hasattr(report, "to_dict") else report
        if not isinstance(payload, dict):
            raise StoreError(f"telemetry report must be a dict or "
                             f"RunReport, got {type(report)}")
        rid = report_id or payload.get("run_id")
        if not rid:
            raise StoreError("telemetry report needs a run_id (or pass "
                             "report_id=...)")
        resolved_kind = kind or payload.get("kind") or "report"
        blob = json.dumps(payload, sort_keys=True, default=str,
                          allow_nan=False)
        conn = self.connection
        with self._txn(conn):
            conn.execute(
                "INSERT INTO telemetry (report_id, kind, report_json,"
                " created_at) VALUES (?, ?, ?, ?)"
                " ON CONFLICT (report_id) DO UPDATE SET"
                " kind = excluded.kind,"
                " report_json = excluded.report_json,"
                " created_at = excluded.created_at",
                (str(rid), str(resolved_kind), blob, _utc_now()))
        return str(rid)

    def record_slo(self, snapshot: Dict[str, Any], *,
                   source: str = "serve", op: Optional[str] = None,
                   report_id: Optional[str] = None) -> int:
        """Record one serving SLO evaluation window; returns its row id.

        ``snapshot`` is a :meth:`repro.serve.ServingTelemetry.snapshot`
        dict (or any dict with the same ``slo`` / ``latency_seconds`` /
        counter shape).  Telemetry without an ``slo`` block — no budget
        configured — still records the observed percentiles with a NULL
        target, so dashboards see the latency even before an SLO exists.

        Snapshots carrying a ``latency_hist_ms`` block (schema v3; every
        :class:`~repro.serve.ServingTelemetry` snapshot does) also fill
        the fixed-bucket histogram columns, from which ``db report``
        re-derives p50/p90/p99 across aggregated windows.  Older
        snapshot dicts without the block record NULLs — readers treat
        that as "histogram unknown", never as zero traffic.
        """
        slo = snapshot.get("slo") or {}
        latency = snapshot.get("latency_seconds") or {}
        hist = snapshot.get("latency_hist_ms") or {}

        def _ms(key: str) -> Optional[float]:
            if key in slo:
                return _to_db_value(slo[key])
            bare = key[len("observed_"):-len("_ms")] if key.startswith(
                "observed_") else key
            if bare in latency:
                return _to_db_value(float(latency[bare]) * 1000.0)
            return None

        within = slo.get("within")
        hist_columns = slo_hist_columns()
        hist_values = [None if hist.get(column) is None
                       else int(hist[column]) for column in hist_columns]
        conn = self.connection
        with self._txn(conn):
            cursor = conn.execute(
                "INSERT INTO slo (report_id, source, op, target_p99_ms,"
                " observed_p50_ms, observed_p95_ms, observed_p99_ms,"
                " requests, errors, shed, within, "
                + ", ".join(hist_columns) + ", created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                + ", ".join("?" * len(hist_columns)) + ", ?)"
                " RETURNING id",
                (report_id, source, op,
                 _to_db_value(slo.get("target_p99_ms")),
                 _ms("observed_p50_ms"), _ms("observed_p95_ms"),
                 _ms("observed_p99_ms"),
                 int(snapshot.get("requests", 0)),
                 int(snapshot.get("errors", 0)),
                 int(snapshot.get("shed", 0)),
                 None if within is None else int(bool(within)),
                 *hist_values,
                 _utc_now()))
            return int(cursor.fetchone()["id"])

    # ------------------------------------------------------------------
    # dedup / lookup primitives (the typed layer is repro.store.query)
    # ------------------------------------------------------------------
    def completed_runs(self, fingerprint: str, experiment: str
                       ) -> Dict[int, "Any"]:
        """``run_index -> StoredRun`` for one (fingerprint, experiment).

        Rows created by :meth:`start_run` whose fit never finished carry
        no metrics; they are *not* returned, so dedup never skips a run
        that only half-happened.
        """
        from .query import query_runs

        return {run.run_index: run
                for run in query_runs(self, fingerprint=fingerprint,
                                      experiment=experiment)
                if run.metrics}

    def has_run(self, fingerprint: str, experiment: str,
                run_index: int) -> bool:
        return run_index in self.completed_runs(fingerprint, experiment)

    def counts(self) -> Dict[str, int]:
        """Row count per table (the ``db report`` headline numbers)."""
        conn = self.connection
        return {table: conn.execute(
                    f"SELECT COUNT(*) AS n FROM {table}").fetchone()["n"]
                for table in TABLES}

    def execute(self, sql: str, parameters: Iterable[Any] = ()
                ) -> List[sqlite3.Row]:
        """Escape hatch: run a read-only query and fetch all rows."""
        return list(self.connection.execute(sql, tuple(parameters)))
