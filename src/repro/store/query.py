"""Typed read side of the experiment store.

The write path (:mod:`repro.store.db`) speaks SQL; consumers shouldn't
have to.  This module surfaces the store as frozen dataclasses —
:class:`StoredRun` per run, :class:`AggregateRow` per (group, metric) —
plus the tabular exporters behind ``repro.cli db query/export/report``.

Metric values round-trip bitwise: sqlite REAL is an IEEE-754 double and
``NULL`` encodes NaN, so ``query_runs`` reconstructs exactly the floats
the protocol computed (the acceptance criterion for dedup'd sweeps).
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple)

from .db import _from_db_value
from .schema import estimate_percentile, slo_hist_columns

if TYPE_CHECKING:                                    # pragma: no cover
    from .db import ExperimentStore

#: the Table-IV headline metrics, used as the default column order
DEFAULT_METRICS = ("MRR", "IRR-1", "IRR-5", "IRR-10")


@dataclass(frozen=True)
class StoredRun:
    """One run row joined with its metrics."""

    id: int
    fingerprint: str
    experiment: str
    model: Optional[str]
    market: Optional[str]
    kind: str
    run_index: int
    seed: Optional[int]
    train_seconds: Optional[float]
    test_seconds: Optional[float]
    source: str
    created_at: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """The metric's value, NaN when absent (renders as '-')."""
        return self.metrics.get(name, float("nan"))

    def row(self, metric_names: Sequence[str] = DEFAULT_METRICS
            ) -> Dict[str, Any]:
        """Flat export record (JSON/CSV friendly)."""
        return {"experiment": self.experiment, "model": self.model,
                "market": self.market, "kind": self.kind,
                "run_index": self.run_index, "seed": self.seed,
                "fingerprint": self.fingerprint, "source": self.source,
                "train_seconds": self.train_seconds,
                "test_seconds": self.test_seconds,
                **{name: self.metric(name) for name in metric_names}}


@dataclass(frozen=True)
class AggregateRow:
    """Summary of one metric over one group of runs."""

    group: Tuple[str, ...]
    metric: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def _row_filters(experiment: Optional[str] = None,
                 model: Optional[str] = None,
                 market: Optional[str] = None,
                 kind: Optional[str] = None,
                 fingerprint: Optional[str] = None,
                 source: Optional[str] = None) -> Tuple[str, list]:
    clauses, params = [], []
    for column, value in (("experiment", experiment), ("model", model),
                          ("market", market), ("kind", kind),
                          ("fingerprint", fingerprint),
                          ("source", source)):
        if value is not None:
            clauses.append(f"runs.{column} = ?")
            params.append(value)
    where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
    return where, params


def query_runs(store: "ExperimentStore", **filters) -> List[StoredRun]:
    """Runs matching the filters, each with its full metric dict.

    Filters: ``experiment``, ``model``, ``market``, ``kind``,
    ``fingerprint``, ``source`` — all exact matches, all optional.
    Runs come back ordered by ``(experiment, run_index)`` so aggregation
    over them is deterministic.
    """
    where, params = _row_filters(**filters)
    rows = store.execute(
        "SELECT runs.* FROM runs" + where
        + " ORDER BY runs.experiment, runs.run_index, runs.id", params)
    if not rows:
        return []
    by_id: Dict[int, Dict[str, float]] = {row["id"]: {} for row in rows}
    placeholders = ",".join("?" * len(by_id))
    for metric in store.execute(
            f"SELECT run_id, name, value FROM metrics"
            f" WHERE run_id IN ({placeholders})", list(by_id)):
        by_id[metric["run_id"]][metric["name"]] = _from_db_value(
            metric["value"])
    return [StoredRun(
        id=row["id"], fingerprint=row["fingerprint"],
        experiment=row["experiment"], model=row["model"],
        market=row["market"], kind=row["kind"],
        run_index=row["run_index"], seed=row["seed"],
        train_seconds=row["train_seconds"],
        test_seconds=row["test_seconds"], source=row["source"],
        created_at=row["created_at"], metrics=by_id[row["id"]])
        for row in rows]


def metric_names(store: "ExperimentStore", **filters) -> List[str]:
    """Every metric name present on the matching runs.

    The Table-IV headline metrics come first (in their canonical order)
    so rendered tables match the paper's layout; the rest follow
    alphabetically.
    """
    where, params = _row_filters(**filters)
    names = {row["name"] for row in store.execute(
        "SELECT DISTINCT metrics.name FROM metrics"
        " JOIN runs ON runs.id = metrics.run_id" + where, params)}
    head = [name for name in DEFAULT_METRICS if name in names]
    tail = sorted(names.difference(DEFAULT_METRICS))
    return head + tail


def aggregate_runs(store: "ExperimentStore",
                   metrics: Optional[Sequence[str]] = None,
                   group_by: Sequence[str] = ("experiment",),
                   **filters) -> List[AggregateRow]:
    """Mean/std/min/max of each metric per group.

    ``group_by`` names :class:`StoredRun` fields (``experiment``,
    ``model``, ``market``, ``kind``, ``fingerprint``, ``source``).
    NaN metric values are excluded from the aggregate (they encode "not
    applicable", e.g. MRR for classifiers), mirroring how the printed
    tables render them as '-'.

    The mean/std are computed by ``np.mean``/``np.std`` over runs
    ordered by ``run_index`` — the exact reduction
    ``ExperimentResult.mean`` and ``repro.stats.summarize_runs``
    perform — so a store-backed aggregate is bitwise-equal to the
    serial protocol's (given the same finite values).
    """
    import numpy as np

    runs = query_runs(store, **filters)
    names = list(metrics) if metrics is not None else metric_names(
        store, **filters)
    groups: Dict[Tuple[str, ...], List[StoredRun]] = {}
    for run in runs:
        key = tuple(str(getattr(run, g)) for g in group_by)
        groups.setdefault(key, []).append(run)
    out: List[AggregateRow] = []
    for key in sorted(groups):
        members = groups[key]
        for name in names:
            values = [run.metrics[name] for run in members
                      if name in run.metrics
                      and not math.isnan(run.metrics[name])]
            if not values:
                out.append(AggregateRow(key, name, 0, float("nan"),
                                        float("nan"), float("nan"),
                                        float("nan")))
                continue
            array = np.asarray(values, dtype=float)
            out.append(AggregateRow(key, name, int(array.size),
                                    float(np.mean(array)),
                                    float(np.std(array)),
                                    float(array.min()),
                                    float(array.max())))
    return out


def store_report(store: "ExperimentStore") -> Dict[str, Any]:
    """The ``db report`` payload: table counts plus per-experiment rows.

    The ``slo`` section aggregates the slo table per (source, op) — one
    row per serving source and endpoint (``op`` NULL is the aggregate
    window a server records alongside its per-endpoint rows), so
    ``db report`` shows at a glance which endpoints blew their budget.
    Since schema v3 each row also carries ``est_p50_ms`` / ``est_p90_ms``
    / ``est_p99_ms``: percentiles re-derived from the *summed* histogram
    buckets of every window in the group.  Summing histograms is exact
    where averaging per-window percentiles is not, so these are the
    numbers to trust across aggregations (NULL when the group predates
    the histogram columns).
    """
    experiments = store.execute(
        "SELECT experiment, fingerprint, kind, source,"
        " COUNT(*) AS runs, MIN(run_index) AS first_run,"
        " MAX(run_index) AS last_run"
        " FROM runs GROUP BY experiment, fingerprint, kind, source"
        " ORDER BY experiment, fingerprint")
    telemetry = store.execute(
        "SELECT kind, COUNT(*) AS n FROM telemetry GROUP BY kind"
        " ORDER BY kind")
    hist_columns = slo_hist_columns()
    hist_sums = ", ".join(f"SUM({column}) AS {column}"
                          for column in hist_columns)
    slo = store.execute(
        "SELECT source, op, COUNT(*) AS windows,"
        " SUM(requests) AS requests, SUM(errors) AS errors,"
        " SUM(shed) AS shed, MAX(target_p99_ms) AS target_p99_ms,"
        " MAX(observed_p99_ms) AS observed_p99_ms,"
        " MIN(within) AS all_within, " + hist_sums +
        " FROM slo GROUP BY source, op ORDER BY source, op")
    slo_rows = []
    for row in slo:
        entry = dict(row)
        hist = {column: entry.pop(column) for column in hist_columns}
        if hist.get("hist_inf"):
            for label, q in (("est_p50_ms", 0.50), ("est_p90_ms", 0.90),
                             ("est_p99_ms", 0.99)):
                entry[label] = round(estimate_percentile(hist, q), 3)
        else:
            entry["est_p50_ms"] = entry["est_p90_ms"] = \
                entry["est_p99_ms"] = None
        slo_rows.append(entry)
    return {
        "path": str(store.path),
        "tables": store.counts(),
        "experiments": [dict(row) for row in experiments],
        "telemetry_kinds": {row["kind"]: row["n"] for row in telemetry},
        "slo": slo_rows,
    }


# ----------------------------------------------------------------------
# rendering (shared by the CLI's --format {table,json,csv})
# ----------------------------------------------------------------------
def render_rows(rows: List[Dict[str, Any]], fmt: str = "table") -> str:
    """Render homogeneous dict-rows as an aligned table, JSON, or CSV."""
    if fmt == "json":
        return json.dumps(_sanitize(rows), indent=2, sort_keys=False,
                          allow_nan=False)
    headers = list(rows[0]) if rows else []
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=headers)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _cell(v) for k, v in row.items()})
        return buffer.getvalue().rstrip("\n")
    if fmt != "table":
        raise ValueError(f"unknown format {fmt!r}; expected table, json "
                         "or csv")
    if not rows:
        return "(no rows)"
    rendered = [[_cell(row.get(h)) for h in headers] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered))
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
              for row in rendered]
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:+.4f}" if abs(value) < 100 else f"{value:.2f}"
    return str(value)


def _sanitize(value: Any) -> Any:
    """NaN/Inf -> None so the JSON output is strictly parseable."""
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value
