"""``ResultSink``: one write API over every result substrate.

Before this module the repo had three incompatible ways to persist a
result: the journal-v2 files ``repro.parallel`` resumes from, the
schema-v1 JSON reports ``repro.obs`` emits, and the ad-hoc
``benchmarks/results/*.json`` artifacts.  Each producer hard-coded its
substrate.  A :class:`ResultSink` abstracts the destination behind three
verbs —

- :meth:`~ResultSink.write_run` — one completed seeded run
  (:class:`RunRecord`);
- :meth:`~ResultSink.write_report` — a schema-v1
  :class:`~repro.obs.RunReport` (pool/serving telemetry, profiles);
- :meth:`~ResultSink.write_bench` — a benchmark artifact envelope;

— with three implementations: :class:`StoreSink` (the sqlite store),
:class:`JsonSink` (the legacy file formats, byte-compatible), and
:class:`TeeSink` (fan-out, e.g. journal *and* store during migration).
The old entry points (``publish_json``/``speed_entry`` in the bench
harness) survive as deprecation shims that delegate here.
"""

from __future__ import annotations

import json
import math
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .db import ExperimentStore


@dataclass
class RunRecord:
    """Everything a sink needs to persist one completed seeded run."""

    experiment: str
    run_index: int
    metrics: Dict[str, float]
    train_seconds: float
    test_seconds: float
    fingerprint: Optional[str] = None
    seed: Optional[int] = None
    kind: str = "experiment"
    source: str = "live"
    #: protocol shape, so sinks can register the config/fingerprint pair
    config: Optional[Dict[str, Any]] = None
    n_runs: Optional[int] = None
    base_seed: Optional[int] = None
    epoch_losses: Optional[List[float]] = field(default=None, repr=False)


class ResultSink:
    """Abstract destination for runs, reports, and bench artifacts.

    Subclasses override the verbs they support; the defaults are no-ops
    so a sink may care about only one result class (e.g. a journal only
    persists runs).
    """

    def write_run(self, record: RunRecord) -> None:
        """Persist one completed run."""

    def write_report(self, report: Any) -> Optional[Path]:
        """Persist a schema-v1 report (RunReport or its dict form)."""
        return None

    def write_bench(self, name: str, envelope: Dict[str, Any]
                    ) -> Optional[Path]:
        """Persist one benchmark artifact envelope."""
        return None

    def close(self) -> None:
        """Release resources (connections, file handles)."""


class StoreSink(ResultSink):
    """Writes every result class into an :class:`ExperimentStore`."""

    def __init__(self, store: Union[ExperimentStore, str, Path]):
        self.store = (store if isinstance(store, ExperimentStore)
                      else ExperimentStore(store))

    def write_run(self, record: RunRecord) -> None:
        if record.fingerprint is None:
            raise ValueError("StoreSink needs RunRecord.fingerprint (the "
                             "store's natural key)")
        self.store.record_run(
            record.experiment, record.fingerprint, record.run_index,
            record.metrics, seed=record.seed,
            train_seconds=record.train_seconds,
            test_seconds=record.test_seconds, kind=record.kind,
            source=record.source, epoch_losses=record.epoch_losses,
            config=record.config, n_runs=record.n_runs,
            base_seed=record.base_seed)

    def write_report(self, report: Any) -> Optional[Path]:
        self.store.record_report(report)
        return self.store.path

    def write_bench(self, name: str, envelope: Dict[str, Any]
                    ) -> Optional[Path]:
        # One telemetry row per benchmark name: a re-run replaces the
        # artifact exactly like rewriting results/<name>.json does.
        self.store.record_report(sanitize_payload(envelope),
                                 kind="benchmark",
                                 report_id=f"bench:{name}")
        return self.store.path

    def close(self) -> None:
        self.store.close()


class JsonSink(ResultSink):
    """The legacy file substrates, unchanged on disk.

    - runs → the fingerprinted journal-v2 file the protocol resumes
      from (``<dir>/experiment-<name>.json``);
    - reports → schema-v1 documents via
      :class:`repro.obs.MetricsSink` (``<dir>/<run_id>.json``);
    - bench envelopes → ``<dir>/<name>.json`` with NaN/Inf written as
      ``null`` (strict JSON, same bytes as the old ``publish_json``).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def write_run(self, record: RunRecord) -> None:
        from ..eval.protocol import _ExperimentJournal

        fields = None
        if record.config is not None:
            fields = {"config": record.config, "n_runs": record.n_runs,
                      "base_seed": record.base_seed}
        journal = _ExperimentJournal(
            self.directory, record.experiment,
            record.n_runs if record.n_runs is not None
            else record.run_index + 1,
            record.base_seed if record.base_seed is not None else 0,
            record.fingerprint, fingerprint_fields=fields)
        journal.record(record.run_index, record.metrics,
                       record.train_seconds, record.test_seconds)

    def write_report(self, report: Any) -> Optional[Path]:
        from ..obs import MetricsSink, RunReport

        if isinstance(report, dict):
            report = RunReport.from_dict(report)
        return MetricsSink(self.directory).write(report)

    def write_bench(self, name: str, envelope: Dict[str, Any]
                    ) -> Optional[Path]:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{name}.json"
        path.write_text(json.dumps(sanitize_payload(envelope), indent=2,
                                   sort_keys=True, allow_nan=False)
                        + "\n")
        return path


class TeeSink(ResultSink):
    """Fans every write out to several sinks, first-listed first."""

    def __init__(self, *sinks: ResultSink):
        self.sinks = [sink for sink in sinks if sink is not None]

    def write_run(self, record: RunRecord) -> None:
        for sink in self.sinks:
            sink.write_run(record)

    def write_report(self, report: Any) -> Optional[Path]:
        path = None
        for sink in self.sinks:
            result = sink.write_report(report)
            path = path if path is not None else result
        return path

    def write_bench(self, name: str, envelope: Dict[str, Any]
                    ) -> Optional[Path]:
        path = None
        for sink in self.sinks:
            result = sink.write_bench(name, envelope)
            path = path if path is not None else result
        return path

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# record builders shared by sinks and the bench harness
# ----------------------------------------------------------------------
def sanitize_payload(value: Any) -> Any:
    """Replace NaN/Inf floats with ``None``, recursively.

    Keeps degenerate measurements *visible* as explicit ``null`` —
    never a bare (non-JSON) ``NaN`` token, never a silently dropped
    key.  NumPy scalars are coerced to their Python equivalents.
    """
    if isinstance(value, dict):
        return {key: sanitize_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_payload(item) for item in value]
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        try:
            return sanitize_payload(value.item())
        except (TypeError, ValueError):
            pass
    return value


def bench_envelope(name: str, payload: Dict[str, Any],
                   settings: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Wrap a bench payload in the standard artifact envelope."""
    from ..obs import SCHEMA_VERSION

    envelope = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if settings is not None:
        envelope["settings"] = dict(settings)
    envelope.update(payload)
    return envelope


def speed_record(measurement: Any, baseline: Any = None) -> Dict[str, Any]:
    """JSON-ready record of one :class:`~repro.eval.speed.SpeedMeasurement`.

    Timings at or below the timer resolution are *degenerate*: any ratio
    built from them is noise.  The record keeps every key, reports the
    unusable speedups as ``None`` (after :func:`sanitize_payload`) and
    raises a ``degenerate_timing`` flag, so a degenerate run never
    masquerades as a missing one.
    """
    from ..eval.speed import MIN_MEASURABLE_SECONDS

    degenerate = (
        measurement.train_seconds_per_epoch <= MIN_MEASURABLE_SECONDS
        or measurement.test_seconds <= MIN_MEASURABLE_SECONDS)
    entry = {
        "name": measurement.name,
        "train_seconds_per_epoch": measurement.train_seconds_per_epoch,
        "test_seconds": measurement.test_seconds,
        "phases": measurement.phases,
        "degenerate_timing": degenerate,
    }
    if baseline is not None:
        with warnings.catch_warnings():
            # speedup_over already returns NaN for sub-resolution inputs;
            # the flag above carries the signal, so the warning is noise
            # inside a bench run.
            warnings.simplefilter("ignore", RuntimeWarning)
            speedup = measurement.speedup_over(baseline)
        entry["speedup_over"] = baseline.name
        entry["train_speedup"] = speedup["train"]
        entry["test_speedup"] = speedup["test"]
        entry["degenerate_timing"] = degenerate or any(
            math.isnan(v) for v in speedup.values())
    return entry


def run_record_from_result(experiment: str, run_index: int,
                           metrics: Dict[str, float], result: Any, *,
                           fingerprint: Optional[str] = None,
                           seed: Optional[int] = None,
                           config: Optional[Dict[str, Any]] = None,
                           n_runs: Optional[int] = None,
                           base_seed: Optional[int] = None,
                           kind: str = "experiment") -> RunRecord:
    """Build a :class:`RunRecord` from a ``TrainResult``-shaped object.

    Works for :class:`~repro.core.trainer.TrainResult` (``epoch_losses``
    attribute) and :class:`~repro.baselines.base.PredictorResult`
    (``extras["epoch_losses"]``) alike.
    """
    epoch_losses = getattr(result, "epoch_losses", None)
    if epoch_losses is None:
        epoch_losses = getattr(result, "extras", {}).get("epoch_losses")
    return RunRecord(
        experiment=experiment, run_index=run_index, metrics=dict(metrics),
        train_seconds=float(result.train_seconds),
        test_seconds=float(result.test_seconds),
        fingerprint=fingerprint, seed=seed, kind=kind, config=config,
        n_runs=n_runs, base_seed=base_seed,
        epoch_losses=([float(x) for x in epoch_losses]
                      if epoch_losses is not None else None))
