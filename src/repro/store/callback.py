"""Write-through training telemetry: the :class:`StoreCallback`.

Rides the PR-1 :class:`~repro.core.callbacks.TrainerCallback` event API
(duck-typed, like :class:`repro.obs.TelemetryCallback`, so
:mod:`repro.store` stays importable without :mod:`repro.core`): the run
row is opened on the first epoch event and every epoch's mean loss is
streamed into the ``epochs`` table as it completes — which is what makes
N forked workers hammering one WAL database the store's stress test, and
what lets ``repro.cli db query`` watch a fit converge while it is still
running.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .db import ExperimentStore


def fallback_fingerprint(experiment: str,
                         config: Optional[Dict[str, Any]] = None,
                         seed: Optional[int] = None) -> str:
    """A stable digest for runs outside the multi-run protocol.

    One-off ``Trainer.fit`` invocations (``repro.cli train --store``)
    have no protocol fingerprint; this derives one from the experiment
    name, config, and seed so the natural key still dedups re-runs of
    the same setup.
    """
    blob = json.dumps({"experiment": experiment, "config": config,
                       "seed": seed}, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class StoreCallback:
    """Streams a fit's per-epoch losses into an :class:`ExperimentStore`.

    Parameters
    ----------
    store:
        The store (or its database path).
    experiment:
        Run name, e.g. ``"RT-GCN (T)@nasdaq-mini"``.
    fingerprint:
        Natural-key digest; derived via :func:`fallback_fingerprint`
        when omitted.
    run_index / seed / kind / config:
        Stamped onto the run row.
    """

    def __init__(self, store: Union[ExperimentStore, str, Path],
                 experiment: str, *,
                 fingerprint: Optional[str] = None, run_index: int = 0,
                 seed: Optional[int] = None, kind: str = "train",
                 config: Optional[Dict[str, Any]] = None):
        self.store = (store if isinstance(store, ExperimentStore)
                      else ExperimentStore(store))
        self.experiment = experiment
        self.config = config
        self.fingerprint = (fingerprint if fingerprint is not None
                            else fallback_fingerprint(experiment, config,
                                                      seed))
        self.run_index = int(run_index)
        self.seed = seed
        self.kind = kind
        #: the ``runs`` row id, set on the first epoch event
        self.run_id: Optional[int] = None

    # ------------------------------------------------------------------
    def _ensure_run(self, trainer) -> int:
        if self.run_id is None:
            config = self.config
            if config is None and trainer is not None:
                from dataclasses import asdict
                config = asdict(trainer.config)
            self.run_id = self.store.start_run(
                self.experiment, self.fingerprint, self.run_index,
                seed=self.seed, kind=self.kind, config=config)
        return self.run_id

    # ------------------------------------------------------------------
    # TrainerCallback protocol
    # ------------------------------------------------------------------
    def on_epoch_start(self, trainer, epoch: int) -> None:
        self._ensure_run(trainer)

    def on_batch_end(self, trainer, epoch: int, day: int,
                     loss: float) -> None:
        """No-op; per-batch rows would swamp the database."""

    def on_epoch_end(self, trainer, epoch: int, mean_loss: float) -> None:
        self.store.record_epoch(self._ensure_run(trainer), epoch,
                                float(mean_loss))

    def on_fit_end(self, trainer, losses) -> None:
        """Nothing to finalize: epochs are already durable, and result
        metrics arrive later via ``record_run`` under the same key."""

    # ------------------------------------------------------------------
    def record_checkpoint(self, path, *, epoch: Optional[int] = None,
                          batch_index: Optional[int] = None,
                          size_bytes: Optional[int] = None,
                          write_seconds: Optional[float] = None,
                          is_best: bool = False) -> int:
        """Land one checkpoint write under this run — the signature
        :class:`repro.ckpt.CheckpointCallback` expects of a
        ``recorder``."""
        return self.store.record_checkpoint(
            path, run_id=self._ensure_run(None), epoch=epoch,
            batch_index=batch_index, size_bytes=size_bytes,
            write_seconds=write_seconds, is_best=is_best)

    # ------------------------------------------------------------------
    def finalize(self, metrics: Dict[str, float],
                 train_seconds: Optional[float] = None,
                 test_seconds: Optional[float] = None) -> int:
        """Attach result metrics to the streamed run (same natural key,
        so the UPSERT keeps the row id and its epoch rows)."""
        return self.store.record_run(
            self.experiment, self.fingerprint, self.run_index, metrics,
            seed=self.seed, train_seconds=train_seconds,
            test_seconds=test_seconds, kind=self.kind, config=self.config)
