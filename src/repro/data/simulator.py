"""Multi-factor market simulator — the stand-in for Yahoo-Finance history.

The original evaluation runs on 2015–2020 daily closes for NASDAQ, NYSE and
CSI.  Offline, we generate prices from a structural model that plants
exactly the dependencies RT-GCN is designed to exploit:

- a *market factor* common to all stocks (AR(1), with an optional crash
  regime mimicking the March-2020 drawdown inside the paper's test window);
- an *industry factor* per industry with positive autocorrelation, so
  same-industry stocks co-move and recent industry returns carry signal
  (the Figure 1(a) ILMN/ISRG phenomenon);
- directed *lead–lag spillovers* along wiki relations: the target's return
  today loads on the source's return yesterday (the Figure 1(b) AAPL→LENS
  phenomenon);
- per-stock AR(1) idiosyncratic noise (momentum / mean-reversion).

Log-prices accumulate the returns; everything is seedable and the factor
paths are returned for inspection and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .relation_builder import DirectedInfluence
from .universe import StockUniverse


@dataclass
class CrashEvent:
    """A market-wide drawdown-and-recovery regime.

    From ``start`` the market-factor mean shifts to ``crash_drift`` for
    ``crash_days`` days and volatility is multiplied by ``vol_multiplier``;
    afterwards the mean is ``recovery_drift`` for ``recovery_days`` days.
    """

    start: int
    crash_days: int = 20
    recovery_days: int = 60
    crash_drift: float = -0.02
    recovery_drift: float = 0.006
    vol_multiplier: float = 2.5

    def drift_and_vol(self, day: int) -> Optional[tuple]:
        if self.start <= day < self.start + self.crash_days:
            return self.crash_drift, self.vol_multiplier
        recovery_end = self.start + self.crash_days + self.recovery_days
        if self.start + self.crash_days <= day < recovery_end:
            return self.recovery_drift, 1.3
        return None


@dataclass
class SimulationConfig:
    """Knobs of the return-generating process (daily log-return units)."""

    num_days: int = 1502
    initial_price_range: tuple = (5.0, 300.0)
    market_vol: float = 0.008
    market_ar: float = 0.05
    industry_vol: float = 0.011
    industry_ar: float = 0.42
    idiosyncratic_vol: float = 0.012
    # Per-stock AR(2) dynamics: lag-1 coefficients (short-term reversal, a
    # well-documented equity effect) and lag-2 coefficients (multi-day
    # momentum).  The mix makes *day-resolution* temporal structure the
    # dominant predictable component — trend features pooled over a window
    # cannot separate the two lags, matching the paper's finding that
    # "stock prediction is a task that depends more on the effectiveness
    # of temporal features" (§V-D-2).
    idiosyncratic_ar_range: tuple = (-0.30, 0.00)
    idiosyncratic_ar2_range: tuple = (0.15, 0.40)
    market_beta_range: tuple = (0.6, 1.4)
    industry_beta_range: tuple = (0.5, 1.5)
    base_drift: float = 0.0003
    crash: Optional[CrashEvent] = None


@dataclass
class SimulatedMarket:
    """Output of :func:`simulate_market`."""

    prices: np.ndarray                 # (num_stocks, num_days) closing prices
    returns: np.ndarray                # (num_stocks, num_days) log returns
    market_factor: np.ndarray          # (num_days,)
    industry_factors: np.ndarray       # (num_industries, num_days)
    industry_index: Dict[str, int]     # industry name -> factor row
    config: SimulationConfig

    @property
    def num_stocks(self) -> int:
        return self.prices.shape[0]

    @property
    def num_days(self) -> int:
        return self.prices.shape[1]


def simulate_market(universe: StockUniverse,
                    influences: Sequence[DirectedInfluence],
                    config: Optional[SimulationConfig] = None,
                    rng: Optional[np.random.Generator] = None
                    ) -> SimulatedMarket:
    """Generate daily closing prices for every stock in ``universe``.

    Parameters
    ----------
    universe:
        Stocks with industry labels (drives the shared factors).
    influences:
        Directed lead–lag edges from the wiki-relation builder.
    config:
        Process parameters; defaults give ≈1.6 % daily total volatility.
    """
    cfg = config if config is not None else SimulationConfig()
    gen = rng if rng is not None else np.random.default_rng()
    n = len(universe)
    days = cfg.num_days
    if days < 2:
        raise ValueError("num_days must be >= 2")

    industries = universe.industries()
    industry_index = {name: k for k, name in enumerate(industries)}
    num_industries = len(industries)
    stock_industry = np.array([industry_index[s.industry]
                               for s in universe.stocks])

    # --- factor paths -------------------------------------------------
    market = np.zeros(days)
    market_shock = gen.normal(0.0, cfg.market_vol, size=days)
    for t in range(days):
        drift, vol_mult = cfg.base_drift, 1.0
        if cfg.crash is not None:
            override = cfg.crash.drift_and_vol(t)
            if override is not None:
                drift, vol_mult = override
        prev = market[t - 1] if t > 0 else 0.0
        market[t] = drift + cfg.market_ar * prev + market_shock[t] * vol_mult

    industry_factors = np.zeros((num_industries, days))
    industry_shock = gen.normal(0.0, cfg.industry_vol,
                                size=(num_industries, days))
    for t in range(days):
        prev = industry_factors[:, t - 1] if t > 0 else 0.0
        industry_factors[:, t] = (cfg.industry_ar * prev
                                  + industry_shock[:, t])

    # --- per-stock structure ------------------------------------------
    beta_market = gen.uniform(*cfg.market_beta_range, size=n)
    beta_industry = gen.uniform(*cfg.industry_beta_range, size=n)
    idio_ar1 = gen.uniform(*cfg.idiosyncratic_ar_range, size=n)
    idio_ar2 = gen.uniform(*cfg.idiosyncratic_ar2_range, size=n)
    idio_shock = gen.normal(0.0, cfg.idiosyncratic_vol, size=(n, days))

    spill_sources = np.array([e.source for e in influences], dtype=int)
    spill_targets = np.array([e.target for e in influences], dtype=int)
    spill_strength = np.array([e.strength for e in influences])

    returns = np.zeros((n, days))
    idio = np.zeros(n)
    idio_prev = np.zeros(n)
    for t in range(days):
        idio_new = (idio_ar1 * idio + idio_ar2 * idio_prev
                    + idio_shock[:, t])
        idio_prev, idio = idio, idio_new
        r = (beta_market * market[t]
             + beta_industry * industry_factors[stock_industry, t]
             + idio)
        if t > 0 and len(spill_sources) > 0:
            spill = np.zeros(n)
            np.add.at(spill, spill_targets,
                      spill_strength * returns[spill_sources, t - 1])
            r = r + spill
        returns[:, t] = r

    # --- prices ---------------------------------------------------------
    initial = gen.uniform(*cfg.initial_price_range, size=n)
    log_prices = np.log(initial)[:, None] + np.cumsum(returns, axis=1)
    prices = np.exp(log_prices)
    return SimulatedMarket(prices=prices, returns=returns,
                           market_factor=market,
                           industry_factors=industry_factors,
                           industry_index=industry_index, config=cfg)
