"""Synthetic news sentiment — the paper's future-work extension.

The conclusion of the paper: "once the model can capture the dependency
among stocks, external information such as news and tweets can enrich the
features and predict stock trends more accurately, which could be our
future work."  This module implements that extension against the simulated
substrate: a sparse per-stock *overnight sentiment* series that carries a
controllable amount of genuine information about the next day's return
(the way overnight news does in Li et al.'s study the paper cites as [8]).

``NewsAugmentedDataset`` wraps any :class:`StockDataset` and appends the
sentiment channel as a fifth feature, so every model in the repository can
be trained with or without news by swapping the dataset object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .dataset import StockDataset


@dataclass(frozen=True)
class NewsConfig:
    """Knobs of the synthetic news process."""

    event_rate: float = 0.2        # P(a stock has a story on a given day)
    informativeness: float = 0.5   # corr(sentiment, next-day return z-score)
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.event_rate <= 1.0:
            raise ValueError(f"event_rate must be in (0, 1], got "
                             f"{self.event_rate}")
        if not 0.0 <= self.informativeness <= 1.0:
            raise ValueError(f"informativeness must be in [0, 1], got "
                             f"{self.informativeness}")


def generate_sentiment(return_ratios: np.ndarray,
                       config: Optional[NewsConfig] = None) -> np.ndarray:
    """Sentiment scores ``(N, days)`` in [-1, 1]; 0 = no story.

    A story published at day ``t``'s close previews the day-``t+1`` return:
    the sentiment is a noisy z-score of the future return with correlation
    ``informativeness``, squashed by tanh.  Days without events are exactly
    zero, so sparsity is visible to the model.
    """
    cfg = config if config is not None else NewsConfig()
    returns = np.asarray(return_ratios, dtype=np.float64)
    rng = np.random.default_rng(cfg.seed)
    n, days = returns.shape

    future = np.zeros_like(returns)
    future[:, :-1] = returns[:, 1:]
    scale = returns.std() or 1.0
    z = future / scale
    rho = cfg.informativeness
    noise = rng.standard_normal(returns.shape)
    raw = rho * z + np.sqrt(max(1.0 - rho * rho, 0.0)) * noise
    sentiment = np.tanh(raw)
    events = rng.uniform(size=returns.shape) < cfg.event_rate
    sentiment[~events] = 0.0
    sentiment[:, -1] = 0.0      # nothing to preview after the last day
    return sentiment


class NewsAugmentedDataset:
    """A :class:`StockDataset` view with a sentiment feature appended.

    Delegates everything to the wrapped dataset; ``features`` returns
    ``(T, N, D + 1)`` where the extra channel is the sentiment at each
    window day.  The sentiment requires no price normalization (it is
    already scale-free in [-1, 1]).
    """

    def __init__(self, base: StockDataset,
                 config: Optional[NewsConfig] = None):
        self._base = base
        self.news_config = config if config is not None else NewsConfig()
        self.sentiment = generate_sentiment(base.return_ratios,
                                            self.news_config)
        self.market = base.market + "+news"

    def __getattr__(self, name):
        return getattr(self._base, name)

    def features(self, day: int, window: int,
                 num_features: int = 4) -> np.ndarray:
        price_features = self._base.features(day, window, num_features)
        segment = self.sentiment[:, day - window + 1:day + 1]
        channel = segment.T[:, :, None]              # (window, N, 1)
        return np.concatenate([price_features, channel], axis=2)

    @property
    def num_feature_channels(self) -> int:
        return 5

    def samples(self, days: List[int], window: int, num_features: int = 4
                ) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        for day in days:
            yield day, self.features(day, window, num_features), \
                self.label(day)

    def __repr__(self) -> str:
        return (f"NewsAugmentedDataset({self._base!r}, "
                f"event_rate={self.news_config.event_rate}, "
                f"informativeness={self.news_config.informativeness})")
