"""The ranking-based stock-prediction dataset object.

Bundles everything one experiment needs: the universe, the relation
matrices (industry, wiki, merged), the simulated price history, the feature
panel, and the chronological train/test day split.  A *sample* is one
trading day ``t``: features are the window ending at ``t`` for every stock
simultaneously (shape ``(T, N, D)``), the label is every stock's day-``t+1``
return ratio (shape ``(N,)``) — exactly the ranking formulation of §III-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..graph import RelationMatrix
from .pipeline import (FeaturePanel, chronological_split,
                       compute_return_ratios)
from .relation_builder import WikiRelationSet
from .simulator import SimulatedMarket
from .universe import StockUniverse


@dataclass
class StockDataset:
    """A complete market dataset for ranking-based stock prediction."""

    market: str
    universe: StockUniverse
    industry_relations: RelationMatrix
    wiki_relations: Optional[WikiRelationSet]
    simulated: SimulatedMarket
    train_day_count: int
    test_day_count: int

    def __post_init__(self):
        self.panel = FeaturePanel.from_prices(self.simulated.prices)
        self.return_ratios = compute_return_ratios(self.simulated.prices)

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    @property
    def relations(self) -> RelationMatrix:
        """Merged relation matrix (industry + wiki when available)."""
        if self.wiki_relations is None:
            return self.industry_relations
        return self.industry_relations.merge(self.wiki_relations.matrix)

    def relations_of(self, source: str) -> RelationMatrix:
        """Select one relation source: ``"industry"``, ``"wiki"``, ``"all"``."""
        if source == "all":
            return self.relations
        if source == "industry":
            return self.industry_relations
        if source == "wiki":
            if self.wiki_relations is None:
                raise KeyError(f"market {self.market!r} has no wiki "
                               "relations (like CSI in the paper)")
            return self.wiki_relations.matrix
        raise ValueError(f"unknown relation source {source!r}")

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    @property
    def num_stocks(self) -> int:
        return len(self.universe)

    @property
    def num_days(self) -> int:
        return self.simulated.num_days

    @property
    def prices(self) -> np.ndarray:
        return self.simulated.prices

    # ------------------------------------------------------------------
    # samples
    # ------------------------------------------------------------------
    def split(self, window: int) -> Tuple[List[int], List[int]]:
        """Train/test prediction-day lists for the given window size."""
        return chronological_split(self.num_days, self.train_day_count,
                                   self.test_day_count, window)

    def features(self, day: int, window: int,
                 num_features: int = 4) -> np.ndarray:
        """Window features for prediction day ``day``: ``(T, N, D)``."""
        return self.panel.window_features(day, window, num_features)

    def label(self, day: int) -> np.ndarray:
        """Ground-truth day-``day+1`` return ratio for every stock: ``(N,)``."""
        if day + 1 >= self.num_days:
            raise IndexError(f"day {day} has no following day to label with")
        return self.return_ratios[:, day + 1].copy()

    def samples(self, days: List[int], window: int, num_features: int = 4
                ) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(day, features, label)`` for each prediction day."""
        for day in days:
            yield day, self.features(day, window, num_features), \
                self.label(day)

    def __repr__(self) -> str:
        wiki = (self.wiki_relations.matrix.num_types
                if self.wiki_relations else 0)
        return (f"StockDataset(market={self.market!r}, "
                f"stocks={self.num_stocks}, days={self.num_days}, "
                f"industry_types={self.industry_relations.num_types}, "
                f"wiki_types={wiki}, train={self.train_day_count}, "
                f"test={self.test_day_count})")
