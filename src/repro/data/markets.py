"""Market presets mirroring the paper's three datasets (Tables II and III).

Full-scale presets reproduce the exact universe sizes and relation
statistics the paper reports; ``*-mini`` presets keep the same *relative*
structure (relation sparsity, crash inside the test window, CSI having no
wiki relations) at a size a CPU-only test-suite can train in seconds.

| preset        | stocks | industry types / ratio | wiki types / ratio | train+test days |
|---------------|--------|------------------------|--------------------|-----------------|
| nasdaq        | 854    | 97 / 5.4 %             | 41 / 0.3 %         | 1295 + 207      |
| nyse          | 1405   | 108 / 6.9 %            | 28 / 0.4 %         | 1295 + 207      |
| csi           | 242    | 24 / 6.7 %             | — (like the paper) | 1295 + 139      |
| nasdaq-mini   | 48     | 10 / 7 %               | 8 / 4 %            | 220 + 60        |
| nyse-mini     | 64     | 12 / 8 %               | 6 / 4 %            | 220 + 60        |
| csi-mini      | 32     | 6 / 8 %                | —                  | 220 + 50        |
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from .dataset import StockDataset
from .pipeline import WARMUP_DAYS
from .relation_builder import (build_industry_relations, build_wiki_relations)
from .simulator import CrashEvent, SimulationConfig, simulate_market
from .universe import generate_universe


@dataclass(frozen=True)
class MarketSpec:
    """Declarative description of a market preset."""

    name: str
    num_stocks: int
    num_industries: int
    industry_pair_ratio: float
    wiki_types: Optional[int]          # None = no wiki relations (CSI)
    wiki_pair_ratio: float
    train_days: int
    test_days: int
    crash_in_test: bool = True         # COVID-like drawdown at test start

    @property
    def num_days(self) -> int:
        # warmup + max window (20) + train + test + 1 label day headroom
        return WARMUP_DAYS + 20 + self.train_days + self.test_days + 1


MARKET_SPECS: Dict[str, MarketSpec] = {
    "nasdaq": MarketSpec("NASDAQ", 854, 97, 0.054, 41, 0.003, 1295, 207),
    "nyse": MarketSpec("NYSE", 1405, 108, 0.069, 28, 0.004, 1295, 207),
    "csi": MarketSpec("CSI", 242, 24, 0.067, None, 0.0, 1295, 139),
    # Mini presets: wiki ratio is intentionally denser than the paper's
    # 0.3-0.4 % — at 48-64 stocks that sparsity would leave almost no
    # lead-lag edges, removing the relation-exclusive signal the paper's
    # comparisons depend on.  Full presets keep the exact Table III stats.
    "nasdaq-mini": MarketSpec("NASDAQ-mini", 48, 10, 0.07, 8, 0.04, 220, 60),
    "nyse-mini": MarketSpec("NYSE-mini", 64, 12, 0.08, 6, 0.04, 220, 60),
    "csi-mini": MarketSpec("CSI-mini", 32, 6, 0.08, None, 0.0, 220, 50),
}


def available_markets() -> list:
    """Names accepted by :func:`load_market`."""
    return sorted(MARKET_SPECS)


def load_market(name: str, seed: int = 0,
                spec_overrides: Optional[dict] = None) -> StockDataset:
    """Generate a full dataset for a named market preset.

    Parameters
    ----------
    name:
        One of :func:`available_markets` (case-insensitive).
    seed:
        Seeds universe generation, relation sampling and the simulator, so
        two calls with the same seed produce identical datasets.
    spec_overrides:
        Optional field overrides for the :class:`MarketSpec` (e.g.
        ``{"train_days": 60}`` for a quick experiment).
    """
    key = name.lower()
    if key not in MARKET_SPECS:
        raise KeyError(f"unknown market {name!r}; available: "
                       f"{available_markets()}")
    spec = MARKET_SPECS[key]
    if spec_overrides:
        spec = replace(spec, **spec_overrides)

    # CRC32 rather than hash(): Python string hashes are salted per
    # process, which would silently change "seeded" datasets between runs.
    root = np.random.SeedSequence([zlib.crc32(key.encode("utf-8")), seed])
    universe_rng, wiki_rng, sim_rng = (np.random.default_rng(s)
                                       for s in root.spawn(3))
    universe = generate_universe(spec.name, spec.num_stocks,
                                 spec.num_industries,
                                 spec.industry_pair_ratio, rng=universe_rng)
    industry = build_industry_relations(universe)
    wiki = None
    influences = []
    if spec.wiki_types is not None:
        wiki = build_wiki_relations(universe, spec.wiki_types,
                                    spec.wiki_pair_ratio, rng=wiki_rng)
        influences = wiki.influences

    crash = None
    if spec.crash_in_test:
        # The paper's test window opens 2020/03/02 — the COVID drawdown sits
        # at its start and most of the 207-day test period is the recovery.
        # Mirror that proportion: the crash occupies roughly the first sixth
        # of the test window, the rest recovers.
        test_start = spec.num_days - spec.test_days - 1
        crash_days = max(5, spec.test_days // 6)
        crash = CrashEvent(start=test_start, crash_days=crash_days,
                           recovery_days=spec.test_days - crash_days,
                           recovery_drift=0.008)
    config = SimulationConfig(num_days=spec.num_days, crash=crash)
    simulated = simulate_market(universe, influences, config=config,
                                rng=sim_rng)
    return StockDataset(market=spec.name, universe=universe,
                        industry_relations=industry, wiki_relations=wiki,
                        simulated=simulated,
                        train_day_count=spec.train_days,
                        test_day_count=spec.test_days)
