"""Feature pipeline (paper §V-A-1, steps 1–4).

Step 1 — *normalized closing price*: within an input window ending at day
``T``, every price is divided by that stock's close on day ``T`` so no
future information leaks into the features.

Step 2 — *moving averages*: 5/10/20-day trailing means of the close,
normalized the same way (weekly / half-month / monthly trends).

Step 3 — *return ratio*: the ground truth
``r_i^{t+1} = (p_i^{t+1} − p_i^t) / p_i^t`` (Eq. 10).

Step 4 — *chronological split* into training and testing day ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..obs.tracer import trace

#: trailing moving-average lengths from the paper (close = length 1)
FEATURE_WINDOWS: Tuple[int, ...] = (1, 5, 10, 20)

#: days of history consumed before the first fully-defined feature vector
WARMUP_DAYS: int = max(FEATURE_WINDOWS) - 1


def moving_average(prices: np.ndarray, length: int) -> np.ndarray:
    """Trailing moving average along the last axis.

    ``out[..., t]`` is the mean of ``prices[..., t-length+1 : t+1]``; the
    first ``length - 1`` positions, which lack full history, are NaN so
    accidental use fails loudly.
    """
    prices = np.asarray(prices, dtype=np.float64)
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if prices.shape[-1] < length:
        raise ValueError(f"need at least {length} days, got "
                         f"{prices.shape[-1]}")
    kernel = np.ones(length) / length
    out = np.full_like(prices, np.nan)
    valid = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), -1, prices)
    out[..., length - 1:] = valid
    return out


def compute_return_ratios(prices: np.ndarray) -> np.ndarray:
    """Day-over-day return ratio (Eq. 10), aligned to the *later* day.

    ``out[..., t] = (p_t − p_{t−1}) / p_{t−1}``; position 0 is 0 by
    convention (no prior day).
    """
    prices = np.asarray(prices, dtype=np.float64)
    out = np.zeros_like(prices)
    out[..., 1:] = prices[..., 1:] / prices[..., :-1] - 1.0
    return out


@dataclass
class FeaturePanel:
    """Pre-computed raw features for a price history.

    ``raw`` has shape ``(num_features, num_stocks, num_days)`` with the
    feature order of Table VIII: close, 5-day MA, 10-day MA, 20-day MA.
    Features are *not yet normalized* — normalization depends on the window
    position (step 1 divides by the window's final close).
    """

    raw: np.ndarray
    prices: np.ndarray

    @classmethod
    def from_prices(cls, prices: np.ndarray) -> "FeaturePanel":
        prices = np.asarray(prices, dtype=np.float64)
        if prices.ndim != 2:
            raise ValueError(f"prices must be (stocks, days), got "
                             f"{prices.shape}")
        if not np.isfinite(prices).all():
            raise ValueError("prices must be finite (no NaN/inf)")
        if np.any(prices <= 0):
            raise ValueError("prices must be strictly positive")
        layers = [prices if w == 1 else moving_average(prices, w)
                  for w in FEATURE_WINDOWS]
        return cls(raw=np.stack(layers, axis=0), prices=prices)

    @property
    def num_stocks(self) -> int:
        return self.prices.shape[0]

    @property
    def num_days(self) -> int:
        return self.prices.shape[1]

    def first_valid_day(self, window: int) -> int:
        """Earliest prediction day ``t`` with a full feature window."""
        return WARMUP_DAYS + window - 1

    def window_features(self, t: int, window: int,
                        num_features: int = 4) -> np.ndarray:
        """Normalized features for the window ending at day ``t``.

        Returns ``(window, num_stocks, num_features)``: each feature value
        in the window is divided by the stock's close at day ``t`` (step 1's
        leak-free normalization).
        """
        if not 1 <= num_features <= len(FEATURE_WINDOWS):
            raise ValueError(f"num_features must be in 1..4, got "
                             f"{num_features}")
        if t < self.first_valid_day(window):
            raise ValueError(f"day {t} lacks history for window={window} "
                             f"(first valid day is "
                             f"{self.first_valid_day(window)})")
        if t >= self.num_days:
            raise IndexError(f"day {t} outside history of {self.num_days}")
        with trace("features"):
            segment = self.raw[:num_features, :, t - window + 1:t + 1]
            anchor = self.prices[:, t][None, :, None]
            normalized = segment / anchor
            # (features, stocks, window) -> (window, stocks, features)
            return normalized.transpose(2, 1, 0)


def chronological_split(num_days: int, train_days: int, test_days: int,
                        window: int) -> Tuple[List[int], List[int]]:
    """Day-index split (step 4): train then test, no shuffling.

    Returns the lists of *prediction days* ``t`` — each sample uses features
    up to ``t`` and is labelled by the day-``t+1`` return.  The last usable
    day is ``num_days - 2``.
    """
    first = WARMUP_DAYS + window - 1
    last = num_days - 2
    available = last - first + 1
    if train_days + test_days > available:
        raise ValueError(f"requested {train_days}+{test_days} days but only "
                         f"{available} usable days exist (num_days="
                         f"{num_days}, window={window})")
    test_start = last - test_days + 1
    train_start = test_start - train_days
    train = list(range(train_start, test_start))
    test = list(range(test_start, last + 1))
    return train, test
