"""Streaming markets: time-evolving relation graphs + scripted regimes.

The static pipeline (:mod:`repro.data.markets`) emits one frozen relation
tensor and one fixed price history, so the paper's *time-sensitive*
relation-weight claim is only exercised through the model's attention —
relation importance never actually drifts in the data.  This module makes
it drift: a :class:`StreamingMarket` replays a seed-deterministic sequence
of per-day :class:`DayEvents`, each carrying

- **edge events** — typed relation edges appearing (new supplier links),
  decaying exponentially toward removal, being churned out, or collapsing
  under an M&A (the acquired company's relations fold into one strong
  ``owned_by`` edge to the acquirer);
- **listing events** — stocks delisting mid-window (every incident edge
  zeroed, slot freed) and new stocks listing into freed slots (universe
  remapping by slot reuse, so the adjacency keeps a fixed width);
- **regime context** — scripted market phases beyond the single COVID
  crash: flash crash, sector rotation, low-volatility grind — which
  modulate the synthetic return stream attached to each day.

Every event batch aggregates to a list of ``(i, j, weight)`` *deltas* with
set semantics (``weight == 0`` removes the edge) — exactly the input of
:meth:`repro.graph.DynamicNormalizedAdjacency.apply_delta`, so the serving
tier can ingest a day in O(touched rows) instead of renormalizing the
world.

Scenarios are declarative (:class:`StreamScenario`), content-fingerprinted
(sha256 over the canonical dict, seed included) so replays dedup in the
experiment store, and replayable: two :class:`StreamingMarket` instances
built from equal scenarios produce identical event streams.

The optional **hypergraph relation mode** (:class:`HypergraphRelations`)
stores each industry as one hyperedge in an N×H incidence matrix — O(N)
memberships instead of the O(N²) pairwise clique the dense relation tensor
pays for big industries (cf. the hypergraph tri-attention line of work,
arXiv:2107.14033).  ``clique_adjacency()`` expands it back for
equivalence tests.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .relation_builder import wiki_type_pool
from .universe import StockUniverse, generate_universe

#: weight below which a decaying edge is dropped entirely
MIN_EDGE_WEIGHT = 0.05

#: drift / vol-multiplier of the unscripted background regime
CALM_DRIFT, CALM_VOL = 0.0003, 1.0


# ---------------------------------------------------------------------------
# regimes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegimePhase:
    """A scripted market phase occupying ``[start, start + days)``.

    ``rotation=True`` marks a sector-rotation phase: industry drifts
    alternate in sign and rotate over the phase, so relative industry
    performance (what the industry relation should pick up) flips while
    the market factor stays flat.
    """

    name: str
    start: int
    days: int
    drift: float = CALM_DRIFT
    vol_multiplier: float = CALM_VOL
    rotation: bool = False

    def covers(self, day: int) -> bool:
        return self.start <= day < self.start + self.days


def flash_crash(start: int) -> RegimePhase:
    """Two days of violent drawdown — the March-2020-in-miniature shock."""
    return RegimePhase("flash_crash", start, 2, drift=-0.06,
                       vol_multiplier=4.0)


def sector_rotation(start: int, days: int = 10) -> RegimePhase:
    """Flat market, alternating industry drifts rotating over the phase."""
    return RegimePhase("sector_rotation", start, days, drift=0.0,
                       vol_multiplier=1.2, rotation=True)


def low_vol_grind(start: int, days: int = 10) -> RegimePhase:
    """Slow steady climb at well-below-normal volatility."""
    return RegimePhase("low_vol_grind", start, days, drift=0.0008,
                       vol_multiplier=0.4)


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeEvent:
    """One relation-edge change: ``weight`` is the new absolute value."""

    day: int
    i: int
    j: int
    weight: float                  # 0.0 = edge removed
    relation: str                  # e.g. "wiki:supplier_of"
    kind: str                      # add | decay | remove | merge


@dataclass(frozen=True)
class ListingEvent:
    """A stock leaving or (re)entering the universe at ``slot``."""

    day: int
    slot: int
    action: str                    # list | delist
    symbol: str


@dataclass
class DayEvents:
    """Everything that happened on one day, ingestion-ready.

    ``deltas`` aggregates the edge events into set-semantics edits
    ``(i, j, new_weight)`` — duplicates already resolved last-wins — the
    exact batch :meth:`DynamicNormalizedAdjacency.apply_delta` consumes.
    """

    day: int
    regime: str
    edges: List[EdgeEvent] = field(default_factory=list)
    listings: List[ListingEvent] = field(default_factory=list)
    deltas: List[Tuple[int, int, float]] = field(default_factory=list)
    market_return: float = 0.0

    def to_payload(self) -> dict:
        """JSON-safe dict for ``POST /v1/ingest``."""
        return {
            "day": self.day,
            "regime": self.regime,
            "deltas": [[int(i), int(j), float(w)]
                       for i, j, w in self.deltas],
            "listings": [{"slot": ev.slot, "action": ev.action,
                          "symbol": ev.symbol} for ev in self.listings],
            "market_return": float(self.market_return),
        }


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StreamScenario:
    """Declarative, fingerprintable description of a streaming market."""

    name: str
    num_stocks: int = 60
    num_industries: int = 8
    num_days: int = 40
    seed: int = 0
    base_density: float = 0.05     # fraction of pairs connected at day 0
    edge_add_rate: float = 2.0     # expected new edges per day (Poisson)
    edge_remove_rate: float = 1.0  # expected hard removals per day
    decay_half_life: float = 12.0  # days until a streamed edge halves
    mna_rate: float = 0.05         # P(M&A event) per day
    listing_rate: float = 0.08     # P(delist) and P(relist) per day
    hypergraph: bool = False
    regimes: Tuple[RegimePhase, ...] = ()

    def __post_init__(self):
        if self.num_stocks < 4:
            raise ValueError("num_stocks must be >= 4")
        if self.num_days < 1:
            raise ValueError("num_days must be >= 1")
        if not 0.0 < self.base_density < 1.0:
            raise ValueError("base_density must be in (0, 1)")
        if self.decay_half_life <= 0:
            raise ValueError("decay_half_life must be > 0")
        for phase in self.regimes:
            if phase.start < 0 or phase.days < 1:
                raise ValueError(f"regime {phase.name!r} has an empty or "
                                 "negative window")

    def to_dict(self) -> dict:
        return {
            "name": self.name, "num_stocks": self.num_stocks,
            "num_industries": self.num_industries,
            "num_days": self.num_days, "seed": self.seed,
            "base_density": self.base_density,
            "edge_add_rate": self.edge_add_rate,
            "edge_remove_rate": self.edge_remove_rate,
            "decay_half_life": self.decay_half_life,
            "mna_rate": self.mna_rate, "listing_rate": self.listing_rate,
            "hypergraph": self.hypergraph,
            "regimes": [{"name": p.name, "start": p.start, "days": p.days,
                         "drift": p.drift,
                         "vol_multiplier": p.vol_multiplier,
                         "rotation": p.rotation} for p in self.regimes],
        }

    def fingerprint(self) -> str:
        """sha256 of the canonical scenario dict — the store dedup key."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


SCENARIOS: Dict[str, StreamScenario] = {
    # CI smoke: small + short, every event type still exercised.
    "smoke": StreamScenario(
        name="smoke", num_stocks=24, num_industries=4, num_days=12,
        base_density=0.10, edge_add_rate=2.0, edge_remove_rate=1.0,
        decay_half_life=6.0, mna_rate=0.15, listing_rate=0.2,
        regimes=(flash_crash(3), low_vol_grind(6, 4))),
    # Default replay scenario for `repro.cli stream`.
    "default": StreamScenario(
        name="default", num_stocks=60, num_industries=8, num_days=40,
        regimes=(flash_crash(8), sector_rotation(15, 10),
                 low_vol_grind(28, 8))),
    # The acceptance benchmark's universe: 500 stocks at 3 % density.
    "dense-500": StreamScenario(
        name="dense-500", num_stocks=500, num_industries=20, num_days=30,
        base_density=0.03, edge_add_rate=6.0, edge_remove_rate=3.0,
        mna_rate=0.1, listing_rate=0.1,
        regimes=(flash_crash(6), sector_rotation(12, 8),
                 low_vol_grind(22, 6))),
}


def get_scenario(name: str, **overrides) -> StreamScenario:
    """Look up a preset scenario, optionally overriding fields."""
    key = name.lower()
    if key not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: "
                       f"{sorted(SCENARIOS)}")
    scenario = SCENARIOS[key]
    return replace(scenario, **overrides) if overrides else scenario


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------
class StreamingMarket:
    """Seed-deterministic per-day event stream over an evolving universe.

    All events are generated eagerly at construction (the stream is a
    *recording*, not a live process), so :meth:`replay` is free to run
    any number of times and two instances built from equal scenarios are
    event-for-event identical — the property the store's fingerprint
    dedup and the CI smoke replay rely on.
    """

    def __init__(self, scenario: StreamScenario):
        self.scenario = scenario
        n = scenario.num_stocks
        # Same seed discipline as load_market: CRC32 of the name (string
        # hash() is process-salted) mixed with the scenario seed.
        root = np.random.SeedSequence(
            [zlib.crc32(f"stream:{scenario.name}".encode("utf-8")),
             scenario.seed])
        universe_rng, event_rng, return_rng = (
            np.random.default_rng(s) for s in root.spawn(3))
        self.universe = generate_universe(
            scenario.name.upper(), n, scenario.num_industries,
            industry_pair_ratio=0.08, rng=universe_rng)
        self._industry_of = np.array(
            [list(self.universe.industries()).index(s.industry)
             for s in self.universe.stocks])
        self._relation_pool = wiki_type_pool(8)
        self._base = self._sample_base_edges(event_rng)
        self.hypergraph: Optional[HypergraphRelations] = (
            HypergraphRelations(self.universe) if scenario.hypergraph
            else None)
        self.events: List[DayEvents] = []
        self.returns = np.zeros((n, scenario.num_days))
        self._generate(event_rng, return_rng)

    # -- construction ---------------------------------------------------
    def _sample_base_edges(self, rng: np.random.Generator
                           ) -> Dict[Tuple[int, int], float]:
        n = self.scenario.num_stocks
        total_pairs = n * (n - 1) // 2
        wanted = max(1, int(round(self.scenario.base_density * total_pairs)))
        edges: Dict[Tuple[int, int], float] = {}
        # Rejection sampling over pair ranks — no O(N²) materialization.
        while len(edges) < wanted:
            draw = rng.integers(0, n, size=(2 * (wanted - len(edges)), 2))
            for i, j in draw:
                if i == j:
                    continue
                key = (int(min(i, j)), int(max(i, j)))
                if key not in edges:
                    edges[key] = float(rng.uniform(0.5, 1.5))
                if len(edges) == wanted:
                    break
        return edges

    def _regime_at(self, day: int) -> Optional[RegimePhase]:
        for phase in self.scenario.regimes:
            if phase.covers(day):
                return phase
        return None

    def _generate(self, rng: np.random.Generator,
                  return_rng: np.random.Generator) -> None:
        sc = self.scenario
        n = sc.num_stocks
        weights = dict(self._base)          # current (i<j) -> weight
        streamed: Dict[Tuple[int, int], float] = {}  # decaying edges
        active = np.ones(n, dtype=bool)
        freed: List[int] = []
        decay = 0.5 ** (1.0 / sc.decay_half_life)
        listed_counter = 0
        beta = return_rng.uniform(0.6, 1.4, size=n)

        def neighbors_of(node: int) -> List[Tuple[int, int]]:
            return [key for key in weights if node in key]

        for day in range(sc.num_days):
            phase = self._regime_at(day)
            regime = phase.name if phase is not None else "calm"
            day_edges: List[EdgeEvent] = []
            day_listings: List[ListingEvent] = []
            delta_acc: Dict[Tuple[int, int], Tuple[float, str, str]] = {}

            def set_edge(i: int, j: int, w: float, relation: str,
                         kind: str) -> None:
                key = (min(i, j), max(i, j))
                if w < MIN_EDGE_WEIGHT:
                    w = 0.0
                if w == 0.0:
                    weights.pop(key, None)
                    streamed.pop(key, None)
                else:
                    weights[key] = w
                    if kind in ("add", "decay"):
                        streamed[key] = w
                delta_acc[key] = (w, relation, kind)

            # 1. exponential decay of streamed edges
            for key in list(streamed):
                set_edge(key[0], key[1], streamed[key] * decay,
                         "wiki:supplier_of", "decay")

            # 2. supplier churn: fresh edges in, old edges out
            for _ in range(rng.poisson(sc.edge_add_rate)):
                live = np.flatnonzero(active)
                if live.size < 2:
                    break
                i, j = rng.choice(live, size=2, replace=False)
                relation = self._relation_pool[
                    int(rng.integers(0, len(self._relation_pool)))]
                set_edge(int(i), int(j), float(rng.uniform(0.6, 1.4)),
                         relation, "add")
            removable = [k for k in weights
                         if active[k[0]] and active[k[1]]]
            for _ in range(rng.poisson(sc.edge_remove_rate)):
                if not removable:
                    break
                key = removable.pop(int(rng.integers(0, len(removable))))
                if key in weights:
                    set_edge(key[0], key[1], 0.0, "wiki:supplier_of",
                             "remove")

            # 3. M&A: acquirer absorbs the target's relations into one
            #    strong owned_by edge; the target's other edges collapse.
            if rng.uniform() < sc.mna_rate and active.sum() >= 3:
                live = np.flatnonzero(active)
                acquirer, target = (int(x) for x in
                                    rng.choice(live, size=2, replace=False))
                for key in neighbors_of(target):
                    other = key[0] if key[1] == target else key[1]
                    if other != acquirer:
                        set_edge(key[0], key[1], 0.0, "wiki:owned_by",
                                 "merge")
                set_edge(acquirer, target, 2.5, "wiki:owned_by", "merge")

            # 4. listings: delist frees a slot; a later listing reuses it
            if rng.uniform() < sc.listing_rate and active.sum() > 4:
                live = np.flatnonzero(active)
                gone = int(rng.choice(live))
                for key in neighbors_of(gone):
                    set_edge(key[0], key[1], 0.0, "wiki:supplier_of",
                             "remove")
                active[gone] = False
                freed.append(gone)
                day_listings.append(ListingEvent(
                    day, gone, "delist", self.universe.stocks[gone].symbol))
            if freed and rng.uniform() < sc.listing_rate:
                slot = freed.pop(0)
                active[slot] = True
                listed_counter += 1
                symbol = f"NEW{listed_counter:03d}"
                day_listings.append(ListingEvent(day, slot, "list", symbol))
                # The newcomer links to a few same-industry incumbents.
                peers = np.flatnonzero(
                    active & (self._industry_of == self._industry_of[slot]))
                peers = peers[peers != slot]
                for peer in rng.choice(
                        peers, size=min(3, peers.size), replace=False):
                    set_edge(slot, int(peer),
                             float(rng.uniform(0.6, 1.2)),
                             "industry:peer", "add")

            # 5. regime-modulated market return for the day
            drift = phase.drift if phase is not None else CALM_DRIFT
            vol = (phase.vol_multiplier if phase is not None
                   else CALM_VOL)
            market_ret = drift + return_rng.normal(0.0, 0.008) * vol
            industry_term = np.zeros(n)
            if phase is not None and phase.rotation:
                # Alternating industry drifts, phase-rotating by day.
                signs = np.where(
                    (self._industry_of + (day - phase.start)) % 2 == 0,
                    1.0, -1.0)
                industry_term = signs * 0.004
            self.returns[:, day] = (
                beta * market_ret + industry_term
                + return_rng.normal(0.0, 0.012 * vol, size=n))
            self.returns[~active, day] = 0.0

            for key, (w, relation, kind) in sorted(delta_acc.items()):
                day_edges.append(EdgeEvent(day, key[0], key[1], w,
                                           relation, kind))
            self.events.append(DayEvents(
                day=day, regime=regime, edges=day_edges,
                listings=day_listings,
                deltas=[(k[0], k[1], w)
                        for k, (w, _, _) in sorted(delta_acc.items())],
                market_return=float(market_ret)))
        self._final_active = active

    # -- views ----------------------------------------------------------
    def base_adjacency(self) -> np.ndarray:
        """Day-0 symmetric weighted adjacency (zero diagonal)."""
        n = self.scenario.num_stocks
        adj = np.zeros((n, n))
        for (i, j), w in self._base.items():
            adj[i, j] = adj[j, i] = w
        return adj

    def adjacency_at(self, day: int) -> np.ndarray:
        """Adjacency after replaying all deltas through ``day`` (tests)."""
        if not -1 <= day < self.scenario.num_days:
            raise ValueError(f"day {day} outside [-1, "
                             f"{self.scenario.num_days})")
        adj = self.base_adjacency()
        for events in self.events[:day + 1]:
            for i, j, w in events.deltas:
                adj[i, j] = adj[j, i] = w
        return adj

    def replay(self) -> Iterator[DayEvents]:
        """Iterate the recorded stream (repeatable, deterministic)."""
        return iter(self.events)

    def active_symbols(self) -> List[str]:
        """Symbols still listed after the final day."""
        return [s.symbol for s, live in
                zip(self.universe.stocks, self._final_active) if live]

    def summary(self) -> dict:
        kinds: Dict[str, int] = {}
        for ev in self.events:
            for edge in ev.edges:
                kinds[edge.kind] = kinds.get(edge.kind, 0) + 1
        return {
            "scenario": self.scenario.name,
            "fingerprint": self.scenario.fingerprint(),
            "num_stocks": self.scenario.num_stocks,
            "num_days": self.scenario.num_days,
            "base_edges": len(self._base),
            "edge_events": sum(len(ev.edges) for ev in self.events),
            "listing_events": sum(len(ev.listings) for ev in self.events),
            "event_kinds": kinds,
            "regimes": sorted({ev.regime for ev in self.events}),
        }


# ---------------------------------------------------------------------------
# hypergraph relation mode
# ---------------------------------------------------------------------------
class HypergraphRelations:
    """Industries as hyperedges: O(N) incidence instead of O(N²) cliques.

    The dense relation tensor spends ``s·(s-1)`` entries on an industry of
    size ``s``; the incidence representation spends ``s``.  For the big
    Zipf-head industries that dominate real universes this is the
    asymptotic win the hypergraph literature points at — a storage and
    propagation-cost change, not just a kernel optimization.
    """

    def __init__(self, universe: StockUniverse):
        self.hyperedges = list(universe.industries())
        n = len(universe)
        h = len(self.hyperedges)
        self.incidence = np.zeros((n, h))
        for k, members in enumerate(universe.industries().values()):
            self.incidence[np.asarray(members), k] = 1.0

    @property
    def num_nodes(self) -> int:
        return self.incidence.shape[0]

    @property
    def num_hyperedges(self) -> int:
        return self.incidence.shape[1]

    def clique_adjacency(self) -> np.ndarray:
        """Expand hyperedges to the pairwise clique adjacency (equivalence
        oracle for tests — the thing we *avoid* storing)."""
        adj = self.incidence @ self.incidence.T
        np.fill_diagonal(adj, 0.0)
        return adj

    def stats(self) -> dict:
        clique_nnz = int(np.count_nonzero(self.clique_adjacency()))
        incidence_nnz = int(np.count_nonzero(self.incidence))
        return {"num_nodes": self.num_nodes,
                "num_hyperedges": self.num_hyperedges,
                "incidence_nnz": incidence_nnz,
                "clique_nnz": clique_nnz,
                "compression": (clique_nnz / incidence_nnz
                                if incidence_nnz else float("nan"))}


__all__ = [
    "MIN_EDGE_WEIGHT", "RegimePhase", "flash_crash", "sector_rotation",
    "low_vol_grind", "EdgeEvent", "ListingEvent", "DayEvents",
    "StreamScenario", "SCENARIOS", "get_scenario", "StreamingMarket",
    "HypergraphRelations",
]
