"""Market data substrate: universes, relations, simulator, pipeline, presets."""

from .dataset import StockDataset
from .markets import MARKET_SPECS, MarketSpec, available_markets, load_market
from .news import NewsAugmentedDataset, NewsConfig, generate_sentiment
from .pipeline import (FEATURE_WINDOWS, WARMUP_DAYS, FeaturePanel,
                       chronological_split, compute_return_ratios,
                       moving_average)
from .relation_builder import (DirectedInfluence, WikiRelationSet,
                               build_industry_relations, build_wiki_relations,
                               wiki_type_pool)
from .simulator import (CrashEvent, SimulatedMarket, SimulationConfig,
                        simulate_market)
from .stream import (SCENARIOS, DayEvents, EdgeEvent, HypergraphRelations,
                     ListingEvent, RegimePhase, StreamScenario,
                     StreamingMarket, flash_crash, get_scenario,
                     low_vol_grind, sector_rotation)
from .universe import (Stock, StockUniverse, allocate_group_sizes,
                       generate_universe, industry_name_pool,
                       pair_ratio_of_sizes)

__all__ = [
    "StockDataset", "MarketSpec", "MARKET_SPECS", "available_markets",
    "load_market",
    "NewsAugmentedDataset", "NewsConfig", "generate_sentiment",
    "FeaturePanel", "FEATURE_WINDOWS", "WARMUP_DAYS", "moving_average",
    "compute_return_ratios", "chronological_split",
    "DirectedInfluence", "WikiRelationSet", "build_industry_relations",
    "build_wiki_relations", "wiki_type_pool",
    "CrashEvent", "SimulationConfig", "SimulatedMarket", "simulate_market",
    "StreamScenario", "SCENARIOS", "get_scenario", "StreamingMarket",
    "DayEvents", "EdgeEvent", "ListingEvent", "RegimePhase",
    "HypergraphRelations", "flash_crash", "sector_rotation",
    "low_vol_grind",
    "Stock", "StockUniverse", "generate_universe", "allocate_group_sizes",
    "industry_name_pool", "pair_ratio_of_sizes",
]
