"""Stock universes with sector→industry structure.

The paper's datasets are the NASDAQ/NYSE stock lists of Feng et al. [9] and
the CSI 300 constituents, each stock carrying a sector-industry label from
the NASDAQ screener.  With no network access, this module generates synthetic
universes whose *industry-structure statistics* match Table III: the number
of industry relation types and the fraction of same-industry stock pairs
(the "relation ratio").

Industry sizes follow a Zipf-like law whose exponent is calibrated by
bisection so that the same-industry pair ratio hits the requested target —
real industry memberships are heavily skewed (a few big industries, a long
tail), and the pair ratio is dominated by the large groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

_SECTORS = [
    "Technology", "Health Care", "Finance", "Consumer Services",
    "Capital Goods", "Energy", "Public Utilities", "Basic Industries",
    "Consumer Non-Durables", "Transportation", "Miscellaneous",
    "Consumer Durables",
]

_INDUSTRY_STEMS = [
    "Computer Software: Prepackaged Software", "Biotechnology",
    "Major Pharmaceuticals", "Nursing Services", "Semiconductors",
    "Internet Software/Services", "Major Banks", "Investment Managers",
    "Property-Casualty Insurers", "Restaurants", "Retail: Apparel",
    "Oil & Gas Production", "Electric Utilities", "Steel/Iron Ore",
    "Packaged Foods", "Air Freight/Delivery Services", "Auto Manufacturing",
    "Medical Specialities", "Telecommunications Equipment",
    "Industrial Machinery/Components", "Precious Metals", "Broadcasting",
    "EDP Services", "Hotels/Resorts", "Real Estate Investment Trusts",
    "Marine Transportation", "Specialty Chemicals", "Aerospace",
    "Home Furnishings", "Shoe Manufacturing", "Beverages (Production)",
    "Life Insurance", "Finance Companies", "Computer Manufacturing",
    "Electronic Components", "Medical/Dental Instruments",
    "Commercial Banks", "Savings Institutions", "Clothing/Shoe/Accessory",
    "Building Products", "Forest Products", "Environmental Services",
]


def industry_name_pool(count: int) -> List[str]:
    """Return ``count`` distinct industry names in a deterministic order."""
    names: List[str] = []
    suffix = 0
    while len(names) < count:
        for stem in _INDUSTRY_STEMS:
            label = stem if suffix == 0 else f"{stem} (Segment {suffix})"
            names.append(label)
            if len(names) == count:
                return names
        suffix += 1
    return names


def pair_ratio_of_sizes(sizes: Sequence[int], total: int) -> float:
    """Same-group pair fraction: Σ s(s-1) / (n(n-1))."""
    sizes = np.asarray(sizes, dtype=np.float64)
    if total < 2:
        return 0.0
    return float((sizes * (sizes - 1)).sum() / (total * (total - 1)))


def allocate_group_sizes(num_items: int, num_groups: int,
                         target_pair_ratio: float,
                         max_iterations: int = 60) -> List[int]:
    """Split ``num_items`` into ``num_groups`` Zipf-sized groups.

    Bisection on the Zipf exponent finds sizes whose same-group pair ratio
    approximates ``target_pair_ratio``.  Each group keeps at least one item.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if num_items < num_groups:
        raise ValueError(f"cannot split {num_items} items into {num_groups} "
                         "non-empty groups")

    def sizes_for(alpha: float) -> List[int]:
        weights = (np.arange(1, num_groups + 1, dtype=np.float64)) ** -alpha
        raw = weights / weights.sum() * num_items
        sizes = np.maximum(np.floor(raw).astype(int), 1)
        # Distribute the rounding remainder to the largest groups first.
        deficit = num_items - int(sizes.sum())
        order = np.argsort(-raw)
        idx = 0
        while deficit != 0:
            target = order[idx % num_groups]
            if deficit > 0:
                sizes[target] += 1
                deficit -= 1
            elif sizes[target] > 1:
                sizes[target] -= 1
                deficit += 1
            idx += 1
        return sizes.tolist()

    low, high = 0.0, 4.0
    best = sizes_for(low)
    for _ in range(max_iterations):
        mid = (low + high) / 2
        candidate = sizes_for(mid)
        ratio = pair_ratio_of_sizes(candidate, num_items)
        best = candidate
        if abs(ratio - target_pair_ratio) / max(target_pair_ratio, 1e-12) < 0.02:
            break
        if ratio < target_pair_ratio:
            low = mid  # more skew -> bigger groups -> higher ratio
        else:
            high = mid
    return best


@dataclass(frozen=True)
class Stock:
    """A listed company in a universe."""

    symbol: str
    name: str
    sector: str
    industry: str
    market_cap: float


@dataclass
class StockUniverse:
    """An ordered collection of stocks with sector/industry structure."""

    market: str
    stocks: List[Stock] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stocks)

    def __getitem__(self, index: int) -> Stock:
        return self.stocks[index]

    @property
    def symbols(self) -> List[str]:
        return [s.symbol for s in self.stocks]

    @property
    def market_caps(self) -> np.ndarray:
        return np.array([s.market_cap for s in self.stocks])

    def industries(self) -> Dict[str, List[int]]:
        """Map industry name → member stock indices."""
        members: Dict[str, List[int]] = {}
        for i, stock in enumerate(self.stocks):
            members.setdefault(stock.industry, []).append(i)
        return members

    def industry_of(self, index: int) -> str:
        return self.stocks[index].industry

    def industry_pair_ratio(self) -> float:
        """Fraction of stock pairs sharing an industry (Table III column)."""
        sizes = [len(v) for v in self.industries().values()]
        return pair_ratio_of_sizes(sizes, len(self.stocks))


def generate_universe(market: str, num_stocks: int, num_industries: int,
                      industry_pair_ratio: float,
                      rng: Optional[np.random.Generator] = None
                      ) -> StockUniverse:
    """Create a synthetic universe matching the target industry statistics.

    Parameters
    ----------
    market:
        Label such as ``"NASDAQ"``; only used in symbols/metadata.
    num_stocks, num_industries:
        Universe size and number of industry relation types (Table III).
    industry_pair_ratio:
        Target fraction of same-industry pairs (Table III relation ratio).
    """
    gen = rng if rng is not None else np.random.default_rng()
    sizes = allocate_group_sizes(num_stocks, num_industries,
                                 industry_pair_ratio)
    industry_names = industry_name_pool(num_industries)
    sector_of = {name: _SECTORS[i % len(_SECTORS)]
                 for i, name in enumerate(industry_names)}
    stocks: List[Stock] = []
    index = 0
    prefix = "".join(ch for ch in market.upper() if ch.isalpha())[:3]
    for industry, size in zip(industry_names, sizes):
        for _ in range(size):
            symbol = f"{prefix}{index:04d}"
            # Log-normal market caps: a few giants, many small caps.
            cap = float(np.exp(gen.normal(9.0, 1.4)))  # in millions
            stocks.append(Stock(symbol=symbol,
                                name=f"{industry.split(':')[0]} Corp {index}",
                                sector=sector_of[industry],
                                industry=industry,
                                market_cap=cap))
            index += 1
    # Shuffle so industry members are not contiguous in index order.
    order = gen.permutation(num_stocks)
    stocks = [stocks[i] for i in order]
    return StockUniverse(market=market, stocks=stocks)
