"""Builders for the two relation sources of the paper (§V-A-2, Table III).

- *Industry relations*: stocks under the same sector-industry label are
  connected, one relation type per industry ("If two stocks are under the
  same industry, we regard this industry as a relation between these two
  stocks").
- *Wiki relations*: typed company-to-company facts (supplier-of, owned-by,
  founded-by, ...).  The paper pulls these from Wikidata; we sample typed
  pairs to the reported sparsity.  Each sampled wiki pair also carries a
  hidden *directed influence* (lead–lag strength) that the market simulator
  uses, so the relational signal the model can exploit genuinely flows along
  these edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import RelationMatrix
from .universe import StockUniverse

_WIKI_RELATION_STEMS = [
    "supplier_of", "owned_by", "founded_by", "subsidiary_of", "partner_of",
    "competitor_of", "licensor_of", "investor_in", "board_member_shared",
    "joint_venture_with", "distributor_for", "spun_off_from",
    "creditor_of", "franchiser_of", "technology_provider_to",
    "manufacturer_for", "brand_owner_of", "patent_licensee_of",
    "marketing_partner_of", "logistics_provider_to", "reinsurer_of",
    "landlord_of", "outsourcing_client_of", "data_provider_to",
    "component_supplier_of", "contract_researcher_for", "co_developer_with",
    "merger_target_of",
]


def wiki_type_pool(count: int) -> List[str]:
    """Return ``count`` distinct wiki relation type names."""
    names: List[str] = []
    suffix = 0
    while len(names) < count:
        for stem in _WIKI_RELATION_STEMS:
            label = stem if suffix == 0 else f"{stem}_{suffix}"
            names.append(f"wiki:{label}")
            if len(names) == count:
                return names
        suffix += 1
    return names


def build_industry_relations(universe: StockUniverse) -> RelationMatrix:
    """Connect same-industry stocks; one relation type per industry.

    Industries with fewer than two members produce no edges but still count
    as relation types only when they appear in the universe — matching how
    the paper counts "types" as distinct industries among the listed stocks.
    """
    industries = universe.industries()
    type_names = [f"industry:{name}" for name in industries]
    n = len(universe)
    tensor = np.zeros((n, n, len(type_names)))
    for k, (_, members) in enumerate(industries.items()):
        members = np.asarray(members)
        if len(members) < 2:
            continue
        grid_i, grid_j = np.meshgrid(members, members, indexing="ij")
        tensor[grid_i, grid_j, k] = 1.0
        tensor[members, members, k] = 0.0
    return RelationMatrix(tensor, type_names)


@dataclass(frozen=True)
class DirectedInfluence:
    """Hidden lead–lag effect along a wiki relation.

    ``target``'s return at day ``t`` receives ``strength`` times
    ``source``'s return at day ``t-1``.  This is what makes wiki relations
    informative (the AAPL→LENS example of the paper's Figure 1(b)).
    """

    source: int
    target: int
    strength: float


@dataclass
class WikiRelationSet:
    """Sampled wiki relations plus the influences they induce."""

    matrix: RelationMatrix
    influences: List[DirectedInfluence]


def build_wiki_relations(universe: StockUniverse, num_types: int,
                         target_pair_ratio: float,
                         rng: Optional[np.random.Generator] = None,
                         influence_range: Tuple[float, float] = (0.25, 0.50),
                         ) -> WikiRelationSet:
    """Sample typed wiki relations to a target sparsity.

    Pairs are drawn uniformly; each linked pair gets 1–2 relation types
    (companies such as Alphabet/Google hold several facts).  Types are
    assigned with a Zipf bias so a few types (ownership, supply) dominate,
    as in Wikidata.
    """
    if num_types < 1:
        raise ValueError("num_types must be >= 1")
    gen = rng if rng is not None else np.random.default_rng()
    n = len(universe)
    total_pairs = n * (n - 1) // 2
    wanted = int(round(target_pair_ratio * total_pairs))
    type_names = wiki_type_pool(num_types)
    type_weights = (np.arange(1, num_types + 1, dtype=np.float64)) ** -1.1
    type_weights /= type_weights.sum()

    tensor = np.zeros((n, n, num_types))
    influences: List[DirectedInfluence] = []
    seen = set()
    attempts = 0
    while len(seen) < wanted and attempts < 50 * max(wanted, 1):
        attempts += 1
        i, j = gen.integers(0, n, size=2)
        if i == j:
            continue
        key = (min(i, j), max(i, j))
        if key in seen:
            continue
        seen.add(key)
        fact_count = 1 + int(gen.uniform() < 0.15)
        types = gen.choice(num_types, size=fact_count, replace=False,
                           p=type_weights)
        for k in types:
            tensor[i, j, k] = 1.0
            tensor[j, i, k] = 1.0
        lo, hi = influence_range
        influences.append(DirectedInfluence(
            source=int(i), target=int(j),
            strength=float(gen.uniform(lo, hi))))
    # Guarantee every type occurs at least once so the reported type count
    # matches Table III even for small universes.
    for k in range(num_types):
        if tensor[:, :, k].sum() > 0:
            continue
        if not seen:
            break
        i, j = next(iter(seen))
        tensor[i, j, k] = 1.0
        tensor[j, i, k] = 1.0
    matrix = RelationMatrix(tensor, type_names)
    return WikiRelationSet(matrix=matrix, influences=influences)


def industry_influences(universe: StockUniverse) -> List[Sequence[int]]:
    """Industry membership lists (used by the simulator's sector factors)."""
    return [members for members in universe.industries().values()
            if len(members) >= 1]
