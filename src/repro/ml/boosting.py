"""Gradient-boosted regression trees (the offline XGBoost substitute).

Implements squared-error gradient boosting: each stage fits a shallow
:class:`~repro.ml.trees.RegressionTree` to the current residuals and is
added with a shrinkage factor (learning rate).  Supports row subsampling
(stochastic gradient boosting) and early stagnation detection.  This is
the regressor the MTDNN baseline's wavelet branch trains on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .trees import RegressionTree


@dataclass
class GradientBoostingRegressor:
    """Squared-error gradient boosting over shallow CARTs.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth, min_samples_leaf:
        Tree shape (stumps to shallow trees; depth 2–3 typical).
    subsample:
        Row fraction drawn (without replacement) per stage; 1.0 = all.
    seed:
        Seeds the subsampling generator.
    """

    n_estimators: int = 50
    learning_rate: float = 0.1
    max_depth: int = 3
    min_samples_leaf: int = 10
    subsample: float = 1.0
    seed: int = 0
    _trees: List[RegressionTree] = field(default_factory=list, repr=False)
    _base: float = 0.0

    def __post_init__(self):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray
            ) -> "GradientBoostingRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.shape != (features.shape[0],):
            raise ValueError("features must be (rows, dims) with matching "
                             "targets")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._base = float(targets.mean())
        predictions = np.full(targets.shape, self._base)
        n_rows = features.shape[0]
        batch = max(2 * self.min_samples_leaf,
                    int(round(self.subsample * n_rows)))
        batch = min(batch, n_rows)
        for _ in range(self.n_estimators):
            residuals = targets - predictions
            if self.subsample < 1.0:
                rows = rng.choice(n_rows, size=batch, replace=False)
            else:
                rows = slice(None)
            tree = RegressionTree(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf)
            tree.fit(features[rows], residuals[rows])
            update = tree.predict(features)
            predictions = predictions + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.full(features.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(features)
        return out

    def staged_predict(self, features: np.ndarray) -> List[np.ndarray]:
        """Predictions after each boosting stage (for learning curves)."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.full(features.shape[0], self._base)
        stages = []
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(features)
            stages.append(out.copy())
        return stages
