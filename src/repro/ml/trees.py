"""Regression trees learned by variance-reduction splitting.

The MTDNN baseline of the paper's related work ([2]) uses eXtreme gradient
boosting on its wavelet branch; with no XGBoost available offline, this
module provides the tree substrate for a from-scratch gradient-boosting
implementation (:mod:`repro.ml.boosting`).

Trees are binary, depth-limited CARTs for squared-error regression: each
split maximizes the reduction in sum-of-squared residuals, with candidate
thresholds drawn from feature quantiles so fitting stays fast on the
dense stock-day design matrices the baseline produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry a value, internal nodes a split."""

    value: float
    feature: int = -1                  # -1 = leaf
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """Depth-limited CART for squared-error regression.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum rows in each child for a split to be valid.
    n_thresholds:
        Candidate thresholds per feature, taken at residual quantiles.
    """

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 10,
                 n_thresholds: int = 16):
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_thresholds = n_thresholds
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray
            ) -> "RegressionTree":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be (rows, dims), got "
                             f"{features.shape}")
        if targets.shape != (features.shape[0],):
            raise ValueError(f"targets shape {targets.shape} does not match "
                             f"{features.shape[0]} rows")
        self._root = self._grow(features, targets, depth=0)
        return self

    def _grow(self, features: np.ndarray, targets: np.ndarray,
              depth: int) -> _Node:
        node_value = float(targets.mean())
        if depth >= self.max_depth or \
                targets.size < 2 * self.min_samples_leaf:
            return _Node(value=node_value)
        split = self._best_split(features, targets)
        if split is None:
            return _Node(value=node_value)
        feature, threshold = split
        mask = features[:, feature] <= threshold
        left = self._grow(features[mask], targets[mask], depth + 1)
        right = self._grow(features[~mask], targets[~mask], depth + 1)
        return _Node(value=node_value, feature=feature, threshold=threshold,
                     left=left, right=right)

    def _best_split(self, features: np.ndarray, targets: np.ndarray):
        """(feature, threshold) maximizing SSE reduction, or None."""
        total_sum = targets.sum()
        total_sq = (targets ** 2).sum()
        n = targets.size
        base_sse = total_sq - total_sum ** 2 / n
        best_gain = 1e-12
        best = None
        quantiles = np.linspace(0.05, 0.95, self.n_thresholds)
        for feature in range(features.shape[1]):
            column = features[:, feature]
            thresholds = np.unique(np.quantile(column, quantiles))
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or \
                        n - n_left < self.min_samples_leaf:
                    continue
                left_sum = targets[mask].sum()
                right_sum = total_sum - left_sum
                left_sse = (targets[mask] ** 2).sum() \
                    - left_sum ** 2 / n_left
                right_sse = (total_sq - (targets[mask] ** 2).sum()) \
                    - right_sum ** 2 / (n - n_left)
                gain = base_sse - left_sse - right_sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(features.shape[0])
        # Iterative traversal with index partitioning (fast and recursion
        # free for batch prediction).
        stack = [(self._root, np.arange(features.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = features[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
