"""Classical ML substrate: regression trees and gradient boosting."""

from .boosting import GradientBoostingRegressor
from .trees import RegressionTree

__all__ = ["RegressionTree", "GradientBoostingRegressor"]
