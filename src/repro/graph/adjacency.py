"""Adjacency normalization for graph convolution (paper §III-C).

Implements Kipf & Welling's renormalization trick
``I + D^{-1/2} A D^{-1/2} → D̃^{-1/2} Ã D̃^{-1/2}`` with ``Ã = A + I``, in
two flavours:

- :func:`normalize_adjacency` for constant (binary/static) adjacencies,
  returning a plain array;
- :func:`normalize_weighted_adjacency` for *learnable* weighted adjacencies
  produced by the weight/time-sensitive strategies, built from autograd ops
  so gradients flow into the relation weights.  Degrees use absolute values
  so the normalization stays defined when learned edge weights go negative
  (a stability refinement over the paper's formula, documented in
  DESIGN.md).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..tensor import Tensor, ensure_tensor
from ..tensor.sparse import (SparseTensor, sparse_gather,
                             sparse_segment_sum)


def add_self_loops(adjacency: np.ndarray) -> np.ndarray:
    """Return ``A + I`` (the Ã of the renormalization trick)."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[-1]
    return adjacency + np.eye(n)


def normalize_adjacency(adjacency: np.ndarray,
                        add_loops: bool = True) -> np.ndarray:
    """Symmetric normalization ``D̃^{-1/2} Ã D̃^{-1/2}`` of a constant graph.

    Parameters
    ----------
    adjacency:
        Non-negative array of shape ``(N, N)`` or batched ``(..., N, N)``.
    add_loops:
        Apply the renormalization trick (``Ã = A + I``).  Disable to obtain
        the pre-trick propagation ``I + D^{-1/2} A D^{-1/2}`` used by the
        extra normalization ablation.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.shape[-1] != adjacency.shape[-2]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if np.any(adjacency < 0):
        raise ValueError("normalize_adjacency expects non-negative entries; "
                         "use normalize_weighted_adjacency for learned "
                         "weights")
    n = adjacency.shape[-1]
    if add_loops:
        matrix = adjacency + np.eye(n)
        degrees = matrix.sum(axis=-1)
        inv_sqrt = np.where(degrees > 0,
                            np.maximum(degrees, 1e-12) ** -0.5, 0.0)
        return matrix * inv_sqrt[..., :, None] * inv_sqrt[..., None, :]
    degrees = adjacency.sum(axis=-1)
    inv_sqrt = np.where(degrees > 0,
                        np.maximum(degrees, 1e-12) ** -0.5, 0.0)
    normalized = adjacency * inv_sqrt[..., :, None] * inv_sqrt[..., None, :]
    return normalized + np.eye(n)


def normalize_weighted_adjacency(adjacency: Union[Tensor, np.ndarray],
                                 eps: float = 1e-8) -> Tensor:
    """Differentiable symmetric normalization for learned edge weights.

    Computes ``Ã = A + I`` and ``Â = D̃^{-1/2} Ã D̃^{-1/2}`` with
    ``D̃_ii = Σ_j |Ã_ij| + eps``.  The absolute value keeps the square root
    real when the learnable relation weights (Eq. 4/5) are negative.

    Works on ``(N, N)`` or batched ``(T, N, N)`` inputs.
    """
    adjacency = ensure_tensor(adjacency)
    n = adjacency.shape[-1]
    if adjacency.shape[-2] != n:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    matrix = adjacency + Tensor(np.eye(n))
    degrees = matrix.abs().sum(axis=-1) + eps           # (..., N)
    inv_sqrt = degrees ** -0.5
    return matrix * inv_sqrt.unsqueeze(-1) * inv_sqrt.unsqueeze(-2)


def normalize_sparse_adjacency(adjacency: SparseTensor,
                               eps: float = 1e-8) -> SparseTensor:
    """Sparse counterpart of :func:`normalize_weighted_adjacency`.

    The input must already contain the self-loop entries (the strategies
    build their CSR patterns as ``mask ∪ diagonal`` with diagonal value
    1), so this only rescales stored values:
    ``v_e ← v_e · d_i^{-1/2} · d_j^{-1/2}`` with
    ``d_i = Σ_e∈row(i) |v_e| + eps`` — numerically identical to the dense
    formula entry-by-entry, while touching O(nnz) instead of O(N²).
    """
    if not isinstance(adjacency, SparseTensor):
        raise TypeError("normalize_sparse_adjacency expects a SparseTensor; "
                        "use normalize_weighted_adjacency for dense inputs")
    pattern = adjacency.pattern
    if pattern.shape[0] != pattern.shape[1]:
        raise ValueError(f"adjacency must be square, got {pattern.shape}")
    values = adjacency.values
    degrees = sparse_segment_sum(values.abs(), pattern) + eps   # (..., N)
    inv_sqrt = degrees ** -0.5
    scaled = (values * sparse_gather(inv_sqrt, pattern, axis="row")
              * sparse_gather(inv_sqrt, pattern, axis="col"))
    return SparseTensor(pattern, scaled)
