"""Graph machinery: relation matrices, normalization, G_RT, strategies."""

from .adjacency import (add_self_loops, normalize_adjacency,
                        normalize_weighted_adjacency)
from .relations import RelationMatrix
from .rtgraph import RelationTemporalGraph, RTGraphStats
from .strategies import (RelationStrategy, TimeSensitiveStrategy,
                         UniformStrategy, WeightStrategy, make_strategy)

__all__ = [
    "RelationMatrix", "RelationTemporalGraph", "RTGraphStats",
    "add_self_loops", "normalize_adjacency", "normalize_weighted_adjacency",
    "RelationStrategy", "UniformStrategy", "WeightStrategy",
    "TimeSensitiveStrategy", "make_strategy",
]
