"""Graph machinery: relation matrices, normalization, caching, strategies."""

from .adjacency import (add_self_loops, normalize_adjacency,
                        normalize_sparse_adjacency,
                        normalize_weighted_adjacency)
from .cache import (NormalizedAdjacencyCache, adjacency_cache,
                    reset_adjacency_cache)
from .delta import DELTA_MODES, DynamicNormalizedAdjacency
from .relations import RelationMatrix
from .rtgraph import RelationTemporalGraph, RTGraphStats
from .strategies import (RelationStrategy, TimeSensitiveStrategy,
                         UniformStrategy, WeightStrategy, make_strategy)

__all__ = [
    "RelationMatrix", "RelationTemporalGraph", "RTGraphStats",
    "add_self_loops", "normalize_adjacency", "normalize_weighted_adjacency",
    "normalize_sparse_adjacency",
    "NormalizedAdjacencyCache", "adjacency_cache", "reset_adjacency_cache",
    "DynamicNormalizedAdjacency", "DELTA_MODES",
    "RelationStrategy", "UniformStrategy", "WeightStrategy",
    "TimeSensitiveStrategy", "make_strategy",
]
