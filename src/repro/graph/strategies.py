"""The three relation-aware propagation strategies of paper §IV-B.

Each strategy is a relation-aware function 𝓡 that turns the multi-hot
relation tensor ``𝓐 ∈ {0,1}^{N×N×K}`` (and, for the time-sensitive variant,
the node features) into a weighted adjacency used by the graph convolution:

- :class:`UniformStrategy` — Eq. (3): every related pair gets weight 1.
- :class:`WeightStrategy` — Eq. (4): ``A_ij = 𝓐_ijᵀ w + b`` with learnable
  ``w ∈ R^K`` and scalar ``b``, shared across time-steps.
- :class:`TimeSensitiveStrategy` — Eq. (5): the relation importance of
  Eq. (4) scaled by the per-time-step feature correlation
  ``X(t)_iᵀ X(t)_j / √n`` (scaled dot-product), yielding a distinct
  adjacency for every relational graph in G_RT.

Implementation notes
--------------------
- Following the released RT-GCN code's convention, learned weights are
  restricted to *related* pairs: the ``+ b`` bias applies only where
  ``sum(𝓐_ij) > 0``, otherwise the graph would become fully dense.
- Every strategy returns the *normalized* adjacency
  ``D̃^{-1/2} Ã D̃^{-1/2}`` ready for Eq. (2); normalization is
  differentiable for the learnable strategies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import init
from ..nn.module import Module, Parameter
from ..nn.random import get_rng
from ..tensor import Tensor, einsum, ensure_tensor
from .adjacency import normalize_adjacency, normalize_weighted_adjacency
from .relations import RelationMatrix


class RelationStrategy(Module):
    """Base class: maps relations (and features) to normalized adjacency."""

    #: whether the produced adjacency differs per time-step
    time_varying: bool = False

    def __init__(self, relations: RelationMatrix):
        super().__init__()
        self.relations = relations
        self._mask = relations.binary_adjacency()

    @property
    def num_types(self) -> int:
        return self.relations.num_types

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        raise NotImplementedError


class UniformStrategy(RelationStrategy):
    """Eq. (3): binary adjacency, one shared weight for all relations.

    The normalized adjacency is constant, so it is precomputed once.
    ``renormalize=False`` switches to the pre-trick propagation
    ``I + D^{-1/2} A D^{-1/2}`` of Eq. (1) — used by the normalization
    ablation benchmark.
    """

    def __init__(self, relations: RelationMatrix, renormalize: bool = True):
        super().__init__(relations)
        self._normalized = Tensor(
            normalize_adjacency(self._mask, add_loops=renormalize))

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        return self._normalized


class WeightStrategy(RelationStrategy):
    """Eq. (4): learnable per-relation-type weights, shared across time."""

    def __init__(self, relations: RelationMatrix,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(relations)
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty(relations.num_types))
        init.uniform_(self.weight, 0.5, 1.5, rng=gen)
        self.bias = Parameter(np.zeros(1))
        self._relation_tensor = Tensor(relations.tensor)
        self._mask_tensor = Tensor(self._mask)

    def raw_adjacency(self) -> Tensor:
        """Un-normalized weighted adjacency (used by tests/case study)."""
        scores = einsum("ijk,k->ij", self._relation_tensor, self.weight)
        return (scores + self.bias) * self._mask_tensor

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        return normalize_weighted_adjacency(self.raw_adjacency())


class TimeSensitiveStrategy(RelationStrategy):
    """Eq. (5): feature correlation × relation importance, per time-step.

    ``forward(features)`` expects ``features`` of shape ``(T, N, D)`` and
    returns a ``(T, N, N)`` stack of normalized adjacencies, one per
    relational graph in G_RT.
    """

    time_varying = True

    def __init__(self, relations: RelationMatrix,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(relations)
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty(relations.num_types))
        init.uniform_(self.weight, 0.5, 1.5, rng=gen)
        self.bias = Parameter(np.zeros(1))
        self._relation_tensor = Tensor(relations.tensor)
        self._mask_tensor = Tensor(self._mask)

    def relation_importance(self) -> Tensor:
        """The Eq. (4) term ``𝓐_ijᵀ w + b`` masked to related pairs."""
        scores = einsum("ijk,k->ij", self._relation_tensor, self.weight)
        return (scores + self.bias) * self._mask_tensor

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        if features is None:
            raise ValueError("TimeSensitiveStrategy requires node features "
                             "of shape (T, N, D)")
        features = ensure_tensor(features)
        if features.ndim != 3:
            raise ValueError(f"expected (T, N, D) features, got "
                             f"{features.shape}")
        if features.shape[1] != self.relations.num_stocks:
            raise ValueError(f"feature node count {features.shape[1]} does "
                             f"not match {self.relations.num_stocks} stocks")
        dim = features.shape[2]
        # time-correlation: scaled dot-product X(t) X(t)^T / sqrt(n)
        correlation = (features @ features.swapaxes(-1, -2)) * (dim ** -0.5)
        weighted = correlation * self.relation_importance() * self._mask_tensor
        return normalize_weighted_adjacency(weighted)


def make_strategy(name: str, relations: RelationMatrix,
                  rng: Optional[np.random.Generator] = None
                  ) -> RelationStrategy:
    """Factory used by models and benchmarks: ``'uniform'|'weight'|'time'``.

    Also accepts the paper's single-letter labels ``'U'``, ``'W'``, ``'T'``.
    """
    key = name.lower()
    if key in ("uniform", "u"):
        return UniformStrategy(relations)
    if key in ("weight", "weighted", "w"):
        return WeightStrategy(relations, rng=rng)
    if key in ("time", "time-sensitive", "time_sensitive", "t"):
        return TimeSensitiveStrategy(relations, rng=rng)
    raise ValueError(f"unknown strategy {name!r}; expected uniform/weight/"
                     "time")
