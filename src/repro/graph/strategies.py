"""The three relation-aware propagation strategies of paper §IV-B.

Each strategy is a relation-aware function 𝓡 that turns the multi-hot
relation tensor ``𝓐 ∈ {0,1}^{N×N×K}`` (and, for the time-sensitive variant,
the node features) into a weighted adjacency used by the graph convolution:

- :class:`UniformStrategy` — Eq. (3): every related pair gets weight 1.
- :class:`WeightStrategy` — Eq. (4): ``A_ij = 𝓐_ijᵀ w + b`` with learnable
  ``w ∈ R^K`` and scalar ``b``, shared across time-steps.
- :class:`TimeSensitiveStrategy` — Eq. (5): the relation importance of
  Eq. (4) scaled by the per-time-step feature correlation
  ``X(t)_iᵀ X(t)_j / √n`` (scaled dot-product), yielding a distinct
  adjacency for every relational graph in G_RT.

Implementation notes
--------------------
- Following the released RT-GCN code's convention, learned weights are
  restricted to *related* pairs: the ``+ b`` bias applies only where
  ``sum(𝓐_ij) > 0``, otherwise the graph would become fully dense.
- Every strategy returns the *normalized* adjacency
  ``D̃^{-1/2} Ã D̃^{-1/2}`` ready for Eq. (2); normalization is
  differentiable for the learnable strategies.
- Each strategy carries a ``graph_mode`` (``auto`` | ``dense`` |
  ``sparse``): the sparse path evaluates Eq. (3)–(5) only on the stored
  edges (plus self-loops), returning a
  :class:`~repro.tensor.sparse.SparseTensor` that :class:`GraphConv`
  propagates via ``spmm``.  ``auto`` dispatches on graph density (see
  ``docs/performance.md``).  The two paths are numerically identical
  entry-by-entry: sparse degrees sum the same |values| + eps, and every
  off-pattern dense entry is exactly zero.
- Static products — the uniform strategy's normalized adjacency and the
  learnable strategies' CSR edge structures — are computed once per
  distinct graph through :func:`repro.graph.cache.adjacency_cache`
  instead of once per forward.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from ..nn import init
from ..nn.module import Module, Parameter
from ..nn.random import get_rng
from ..tensor import Tensor, concat, default_dtype, einsum, ensure_tensor
from ..tensor.sparse import (SparsePattern, SparseTensor, resolve_graph_mode,
                             sddmm)
from .adjacency import (normalize_adjacency, normalize_sparse_adjacency,
                        normalize_weighted_adjacency)
from .cache import adjacency_cache
from .relations import RelationMatrix


class _SparseStructure(NamedTuple):
    """Static CSR structure of one relation graph (topology only).

    ``full`` is the pattern of ``mask ∪ diagonal`` (what the normalized
    adjacency is stored on); ``off`` is the pattern of the mask alone
    (where learned edge values live); ``edge_relations`` holds the
    multi-hot relation vector of every off-diagonal edge, ``(nnz_off, K)``;
    ``order`` permutes ``concat([off_values, diag_values])`` into
    ``full``'s row-major CSR order.
    """

    full: SparsePattern
    off: SparsePattern
    edge_relations: np.ndarray
    order: np.ndarray


def _sparse_structure(relations: RelationMatrix,
                      mask: np.ndarray) -> _SparseStructure:
    n = mask.shape[0]
    off = SparsePattern.from_mask(mask)
    full = SparsePattern.from_mask((mask != 0) | np.eye(n, dtype=bool))
    diagonal = full.rows == full.indices
    # Off-diagonal entries of `full` appear in the same row-major order as
    # `off` (the mask has no diagonal), so concat([off, diag]) reindexes
    # into full CSR order with one permutation.
    off_position = np.cumsum(~diagonal) - 1
    order = np.where(diagonal, off.nnz + full.rows, off_position)
    edge_relations = relations.tensor[off.rows, off.indices]
    return _SparseStructure(full, off, edge_relations, order)


class RelationStrategy(Module):
    """Base class: maps relations (and features) to normalized adjacency."""

    #: whether the produced adjacency differs per time-step
    time_varying: bool = False

    def __init__(self, relations: RelationMatrix, graph_mode: str = "auto",
                 density_threshold: Optional[float] = None):
        super().__init__()
        self.relations = relations
        self._mask = relations.binary_adjacency()
        self.graph_mode = graph_mode
        self.density_threshold = density_threshold
        n = relations.num_stocks
        # Dispatch density counts the self-loops the propagation adds.
        self.density = ((self._mask != 0).sum() + n) / (n * n) if n else 1.0
        resolve_graph_mode(graph_mode, self.density, density_threshold)

    @property
    def num_types(self) -> int:
        return self.relations.num_types

    def resolved_mode(self) -> str:
        """The concrete backend ``auto`` resolves to for this graph."""
        return resolve_graph_mode(self.graph_mode, self.density,
                                  self.density_threshold)

    def _structure(self) -> _SparseStructure:
        """This graph's CSR structure, computed once per distinct graph."""
        key = ("structure", self.relations.cache_token())
        return adjacency_cache().get_or_compute(
            key, lambda: _sparse_structure(self.relations, self._mask))

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        raise NotImplementedError


class UniformStrategy(RelationStrategy):
    """Eq. (3): binary adjacency, one shared weight for all relations.

    The normalized adjacency is constant, so it is computed once per
    distinct graph (cached globally, shared across model instances).
    ``renormalize=False`` switches to the pre-trick propagation
    ``I + D^{-1/2} A D^{-1/2}`` of Eq. (1) — used by the normalization
    ablation benchmark.
    """

    def __init__(self, relations: RelationMatrix, renormalize: bool = True,
                 graph_mode: str = "auto",
                 density_threshold: Optional[float] = None):
        super().__init__(relations, graph_mode=graph_mode,
                         density_threshold=density_threshold)
        self.renormalize = renormalize

    def _dense_normalized(self) -> Tensor:
        # The storage dtype is part of the key: the same graph trained
        # under different dtype policies must not share one cached tensor
        # (a float64 adjacency served into a float32 run would silently
        # re-promote every propagation).
        key = ("uniform", self.relations.cache_token(), self.renormalize,
               "dense", default_dtype().str)
        return adjacency_cache().get_or_compute(
            key, lambda: Tensor(normalize_adjacency(
                self._mask, add_loops=self.renormalize)))

    def _sparse_normalized(self) -> SparseTensor:
        key = ("uniform", self.relations.cache_token(), self.renormalize,
               "sparse", default_dtype().str)
        return adjacency_cache().get_or_compute(
            key, lambda: SparseTensor.from_dense(
                self._dense_normalized().data))

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        if self.resolved_mode() == "sparse":
            return self._sparse_normalized()
        return self._dense_normalized()


class WeightStrategy(RelationStrategy):
    """Eq. (4): learnable per-relation-type weights, shared across time."""

    def __init__(self, relations: RelationMatrix,
                 rng: Optional[np.random.Generator] = None,
                 graph_mode: str = "auto",
                 density_threshold: Optional[float] = None):
        super().__init__(relations, graph_mode=graph_mode,
                         density_threshold=density_threshold)
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty(relations.num_types))
        init.uniform_(self.weight, 0.5, 1.5, rng=gen)
        self.bias = Parameter(np.zeros(1))
        self._relation_tensor = Tensor(relations.tensor)
        self._mask_tensor = Tensor(self._mask)

    def raw_adjacency(self) -> Tensor:
        """Un-normalized weighted adjacency (used by tests/case study)."""
        scores = einsum("ijk,k->ij", self._relation_tensor, self.weight)
        return (scores + self.bias) * self._mask_tensor

    def _edge_values(self, structure: _SparseStructure) -> Tensor:
        """Eq. (4) evaluated only on the stored edges: ``(nnz_off,)``."""
        scores = (Tensor(structure.edge_relations) * self.weight).sum(axis=-1)
        return scores + self.bias

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        if self.resolved_mode() != "sparse":
            return normalize_weighted_adjacency(self.raw_adjacency())
        structure = self._structure()
        loops = Tensor(np.ones(self.relations.num_stocks))
        values = concat([self._edge_values(structure), loops],
                        axis=0)[structure.order]
        return normalize_sparse_adjacency(
            SparseTensor(structure.full, values))


class TimeSensitiveStrategy(RelationStrategy):
    """Eq. (5): feature correlation × relation importance, per time-step.

    ``forward(features)`` expects ``features`` of shape ``(T, N, D)`` and
    returns a ``(T, N, N)`` stack of normalized adjacencies, one per
    relational graph in G_RT.  Every emission supersedes the previous
    per-step stack: the old cache entry is explicitly invalidated before
    the new one is recorded, so downstream consumers can never observe a
    stale adjacency for this (strategy, relation-set, time-window) key.
    """

    time_varying = True

    def __init__(self, relations: RelationMatrix,
                 rng: Optional[np.random.Generator] = None,
                 graph_mode: str = "auto",
                 density_threshold: Optional[float] = None):
        super().__init__(relations, graph_mode=graph_mode,
                         density_threshold=density_threshold)
        gen = rng if rng is not None else get_rng()
        self.weight = Parameter(np.empty(relations.num_types))
        init.uniform_(self.weight, 0.5, 1.5, rng=gen)
        self.bias = Parameter(np.zeros(1))
        self._relation_tensor = Tensor(relations.tensor)
        self._mask_tensor = Tensor(self._mask)

    def relation_importance(self) -> Tensor:
        """The Eq. (4) term ``𝓐_ijᵀ w + b`` masked to related pairs."""
        scores = einsum("ijk,k->ij", self._relation_tensor, self.weight)
        return (scores + self.bias) * self._mask_tensor

    def step_key(self, window: int) -> tuple:
        """Cache key of the latest emitted per-step adjacency stack."""
        return ("time-step", self.relations.cache_token(), window)

    def _check_features(self, features: Tensor) -> Tensor:
        if features is None:
            raise ValueError("TimeSensitiveStrategy requires node features "
                             "of shape (T, N, D)")
        features = ensure_tensor(features)
        if features.ndim != 3:
            raise ValueError(f"expected (T, N, D) features, got "
                             f"{features.shape}")
        if features.shape[1] != self.relations.num_stocks:
            raise ValueError(f"feature node count {features.shape[1]} does "
                             f"not match {self.relations.num_stocks} stocks")
        return features

    def forward(self, features: Optional[Tensor] = None) -> Tensor:
        features = self._check_features(features)
        dim = features.shape[2]
        if self.resolved_mode() != "sparse":
            # time-correlation: scaled dot-product X(t) X(t)^T / sqrt(n)
            correlation = (features @ features.swapaxes(-1, -2)) \
                * (dim ** -0.5)
            weighted = (correlation * self.relation_importance()
                        * self._mask_tensor)
            adjacency = normalize_weighted_adjacency(weighted)
        else:
            structure = self._structure()
            # Eq. (5) on the stored edges only: sampled correlation times
            # the shared relation importance, with unit self-loops.
            correlation = sddmm(structure.off, features,
                                features) * (dim ** -0.5)
            importance = (Tensor(structure.edge_relations)
                          * self.weight).sum(axis=-1) + self.bias
            loops = Tensor(np.ones((features.shape[0],
                                    self.relations.num_stocks)))
            values = concat([correlation * importance, loops],
                            axis=-1)[:, structure.order]
            adjacency = normalize_sparse_adjacency(
                SparseTensor(structure.full, values))
        cache = adjacency_cache()
        key = self.step_key(features.shape[0])
        cache.invalidate(key)
        # Record detached: the cache entry is for observation/reuse, and
        # must not pin the emitting forward's autograd graph in memory.
        cache.put(key, adjacency.detach())
        return adjacency


def make_strategy(name: str, relations: RelationMatrix,
                  rng: Optional[np.random.Generator] = None,
                  graph_mode: str = "auto",
                  density_threshold: Optional[float] = None
                  ) -> RelationStrategy:
    """Factory used by models and benchmarks: ``'uniform'|'weight'|'time'``.

    Also accepts the paper's single-letter labels ``'U'``, ``'W'``, ``'T'``.
    ``graph_mode``/``density_threshold`` configure the dense/sparse
    dispatch (see ``docs/performance.md``).
    """
    key = name.lower()
    if key in ("uniform", "u"):
        return UniformStrategy(relations, graph_mode=graph_mode,
                               density_threshold=density_threshold)
    if key in ("weight", "weighted", "w"):
        return WeightStrategy(relations, rng=rng, graph_mode=graph_mode,
                              density_threshold=density_threshold)
    if key in ("time", "time-sensitive", "time_sensitive", "t"):
        return TimeSensitiveStrategy(relations, rng=rng,
                                     graph_mode=graph_mode,
                                     density_threshold=density_threshold)
    raise ValueError(f"unknown strategy {name!r}; expected uniform/weight/"
                     "time")
