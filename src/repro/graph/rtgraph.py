"""The relation-temporal graph G_RT (paper §III-B and §IV-A).

``G_RT = (V, E)`` has a node ``v_ti`` for every (time-step, stock) pair and
two edge families:

- relational edges ``E_S = {v_ti v_tj | (i, j) ∈ G_R}`` connecting related
  stocks *within* a time-step (the blue edges of Figure 2), and
- temporal edges ``E_T = {v_ti v_(t+1)i}`` connecting the *same* stock across
  consecutive time-steps (the black edges).

The convolutional model operates on dense tensors, so this class is the
structural view: it drives dataset statistics, visualization in the
examples, and the property tests that pin down the graph's invariants
(fixed node/edge counts, the "cylinder" structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import networkx as nx
import numpy as np

from .relations import RelationMatrix

Node = Tuple[int, int]  # (time-step t, stock index i)


@dataclass(frozen=True)
class RTGraphStats:
    """Size summary of a relation-temporal graph."""

    num_stocks: int
    num_steps: int
    num_nodes: int
    num_relational_edges: int
    num_temporal_edges: int

    @property
    def num_edges(self) -> int:
        return self.num_relational_edges + self.num_temporal_edges


class RelationTemporalGraph:
    """Explicit node/edge view of G_RT over ``T`` time-steps.

    The node and edge sets are fixed: "no nodes or edges are dynamically
    added during the training and testing" (§III-B).
    """

    def __init__(self, relations: RelationMatrix, num_steps: int):
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self.relations = relations
        self.num_steps = num_steps
        self.num_stocks = relations.num_stocks
        self._adjacency = relations.binary_adjacency()

    # ------------------------------------------------------------------
    # node and edge iteration
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Yield every ``v_ti`` as a ``(t, i)`` pair."""
        for t in range(self.num_steps):
            for i in range(self.num_stocks):
                yield (t, i)

    def relational_edges(self) -> Iterator[Tuple[Node, Node]]:
        """Yield E_S: intra-step edges between related stocks."""
        rows, cols = np.nonzero(np.triu(self._adjacency, k=1))
        for t in range(self.num_steps):
            for i, j in zip(rows, cols):
                yield ((t, int(i)), (t, int(j)))

    def temporal_edges(self) -> Iterator[Tuple[Node, Node]]:
        """Yield E_T: inter-step edges linking each stock to itself."""
        for t in range(self.num_steps - 1):
            for i in range(self.num_stocks):
                yield ((t, i), (t + 1, i))

    # ------------------------------------------------------------------
    # statistics and views
    # ------------------------------------------------------------------
    def stats(self) -> RTGraphStats:
        per_step = int(np.triu(self._adjacency, k=1).sum())
        return RTGraphStats(
            num_stocks=self.num_stocks,
            num_steps=self.num_steps,
            num_nodes=self.num_stocks * self.num_steps,
            num_relational_edges=per_step * self.num_steps,
            num_temporal_edges=self.num_stocks * (self.num_steps - 1),
        )

    def neighbors(self, t: int, i: int) -> List[Node]:
        """All G_RT neighbors of node ``v_ti`` (relational + temporal)."""
        if not (0 <= t < self.num_steps and 0 <= i < self.num_stocks):
            raise IndexError(f"node ({t}, {i}) outside graph")
        result: List[Node] = [(t, int(j))
                              for j in np.nonzero(self._adjacency[i])[0]]
        if t > 0:
            result.append((t - 1, i))
        if t < self.num_steps - 1:
            result.append((t + 1, i))
        return result

    def relational_graph(self) -> nx.Graph:
        """One time-slice G_R as a networkx graph (nodes are stock indices)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_stocks))
        rows, cols = np.nonzero(np.triu(self._adjacency, k=1))
        for i, j in zip(rows, cols):
            types = [self.relations.type_names[k]
                     for k in np.nonzero(self.relations.tensor[i, j])[0]]
            graph.add_edge(int(i), int(j), relations=types)
        return graph

    def to_networkx(self) -> nx.Graph:
        """Full G_RT as a networkx graph with typed edges.

        Edge attribute ``kind`` is ``"relational"`` or ``"temporal"``.
        Intended for inspection and plotting of small graphs; the model
        itself never materializes this.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        graph.add_edges_from(self.relational_edges(), kind="relational")
        graph.add_edges_from(self.temporal_edges(), kind="temporal")
        return graph

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"RelationTemporalGraph(stocks={stats.num_stocks}, "
                f"steps={stats.num_steps}, nodes={stats.num_nodes}, "
                f"edges={stats.num_edges})")
