"""Incremental maintenance of the normalized adjacency (streaming graphs).

The symmetric normalization ``Â = D̃^{-1/2} Ã D̃^{-1/2}`` couples every
entry to two row degrees: ``Â_uv = Ã_uv · d_u^{-1/2} · d_v^{-1/2}`` with
``d_u = Σ_w |Ã_uw| + eps``.  Editing one edge ``(i, j)`` therefore
changes (a) the edited entries themselves and (b) every entry in a row
or column of ``i`` or ``j`` — because ``d_i`` and ``d_j`` moved.  For a
symmetric matrix the column-``i`` entries live in the rows of ``i``'s
neighbours, so the exact set of rows to renormalize is::

    touched = {i, j} ∪ N(i) ∪ N(j)

which is O(Σ degree of touched) work instead of the O(nnz) of a full
recompute.  :class:`DynamicNormalizedAdjacency` maintains the
unnormalized ``Ã`` (self-loops included, diagonal fixed at 1), the
degree vector, and the normalized output, and :meth:`apply_delta`
performs exactly that touched-row renormalization in either the dense
or the CSR representation.

The math matches :func:`repro.graph.adjacency.normalize_weighted_adjacency`
(dense) / :func:`~repro.graph.adjacency.normalize_sparse_adjacency`
(CSR) entry for entry — absolute-value degrees plus ``eps`` — so a
delta-updated adjacency agrees with a from-scratch normalization to
``<= 1e-12`` (the property-equivalence suite in
``tests/graph/test_delta.py`` asserts this across random event
sequences, including delete-then-re-add and delisting).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..sparse.csr import CSRMatrix
from ..tensor.sparse import SparsePattern

#: one symmetric edge edit: (i, j, new_weight); weight 0 removes the edge
EdgeEdit = Tuple[int, int, float]

DELTA_MODES = ("dense", "csr")


def _normalize_edits(edits: Iterable[Union[EdgeEdit, Sequence]], n: int
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and canonicalize an edit batch (last write wins per pair).

    Returns ``(ii, jj, weights)`` with ``ii < jj`` and one entry per
    distinct pair — fully vectorized, since a streaming day can carry
    hundreds of edits and this runs inside the serving tick budget.
    """
    if not isinstance(edits, np.ndarray):
        edits = list(edits)
    try:
        arr = np.asarray(edits, dtype=np.float64)
    except (TypeError, ValueError):
        raise ValueError(f"edge edits must be (i, j, weight) triples, "
                         f"got {edits!r}") from None
    if arr.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"edge edits must be (i, j, weight) triples, "
                         f"got shape {arr.shape}")
    ii = arr[:, 0].astype(np.int64)
    jj = arr[:, 1].astype(np.int64)
    loops = ii == jj
    if loops.any():
        i = int(ii[np.argmax(loops)])
        raise ValueError(f"self-loop ({i}, {i}) is fixed at 1 and "
                         "cannot be edited")
    if (ii.min() < 0 or ii.max() >= n or jj.min() < 0 or jj.max() >= n):
        raise ValueError(f"edge edits out of range for {n} nodes")
    lo, hi = np.minimum(ii, jj), np.maximum(ii, jj)
    key = lo * n + hi
    # last write wins: a stable sort groups duplicates in batch order,
    # so the last element of each group is the surviving write
    order = np.argsort(key, kind="stable")
    sorted_keys = key[order]
    last = np.empty(key.size, dtype=bool)
    last[-1] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=last[:-1])
    sel = order[last]
    return lo[sel], hi[sel], arr[sel, 2]


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an int array (cheaper than np.unique
    on the small per-tick index sets this module deals in)."""
    values = np.sort(values)
    if values.size <= 1:
        return values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _span_gather(indptr: np.ndarray, rows: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Entry positions of the given CSR rows, plus the row of each.

    Vectorized replacement for ``[range(indptr[r], indptr[r+1]) for r in
    rows]`` — the gather every touched-row renormalization runs on.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    idx = (np.arange(total, dtype=np.int64)
           - np.repeat(offsets, lengths) + np.repeat(starts, lengths))
    return idx, np.repeat(rows, lengths)


class DynamicNormalizedAdjacency:
    """A normalized adjacency that absorbs edge edits incrementally.

    Parameters
    ----------
    adjacency:
        The base weighted adjacency ``A`` — square, symmetric, zero
        diagonal (self-loops are added internally, as the normalization
        trick prescribes).
    mode:
        ``"dense"`` keeps ``(N, N)`` arrays; ``"csr"`` keeps a
        :class:`~repro.sparse.CSRMatrix` and renormalizes by row slice.
    eps:
        Degree regularizer, matching the weighted normalizers.

    The instance is the *identity* of the evolving graph: plain data, no
    autograd — serving reads :meth:`normalized` per tick, training
    continues to use the strategy/cache path for static graphs.
    """

    def __init__(self, adjacency: np.ndarray, mode: str = "csr",
                 eps: float = 1e-8):
        if mode not in DELTA_MODES:
            raise ValueError(f"mode must be one of {DELTA_MODES}, got "
                             f"{mode!r}")
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square (N, N), got "
                             f"{adjacency.shape}")
        if np.any(np.diag(adjacency) != 0):
            raise ValueError("adjacency diagonal must be zero (self-loops "
                             "are added internally)")
        if not np.array_equal(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric")
        self.mode = mode
        self.eps = float(eps)
        self.num_nodes = int(adjacency.shape[0])
        self.edits_applied = 0
        self.rows_renormalized = 0
        tilde = adjacency + np.eye(self.num_nodes)
        if mode == "dense":
            self._tilde = tilde
            self._degrees = self._row_degrees_dense(
                np.arange(self.num_nodes), self._tilde)
        else:
            self._tilde = CSRMatrix.from_dense(tilde)
            self._degrees = self._row_degrees_csr(
                np.arange(self.num_nodes), self._tilde)
            # flattened row-major entry keys, kept in sync by _apply_csr
            # so each tick skips rebuilding them from the pattern
            self._keys = (self._tilde.pattern.rows * self.num_nodes
                          + self._tilde.indices)
        self._renormalize_all()

    # ------------------------------------------------------------------
    # degree helpers — one summation recipe for full AND delta paths, so
    # a delta-updated instance is bitwise-equal to a freshly built one
    # ------------------------------------------------------------------
    def _row_degrees_dense(self, rows: np.ndarray,
                           tilde: np.ndarray) -> np.ndarray:
        return np.abs(tilde[rows]).sum(axis=1) + self.eps

    def _row_degrees_csr(self, rows: np.ndarray,
                         tilde: CSRMatrix) -> np.ndarray:
        idx, _ = _span_gather(tilde.indptr, rows)
        lengths = tilde.indptr[rows + 1] - tilde.indptr[rows]
        starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        # every row holds at least its self-loop, so reduceat never sees
        # an empty segment
        return np.add.reduceat(np.abs(tilde.data[idx]), starts) + self.eps

    def _renormalize_all(self) -> None:
        inv_sqrt = self._degrees ** -0.5
        if self.mode == "dense":
            self._normalized = (self._tilde * inv_sqrt[:, None]
                                * inv_sqrt[None, :])
        else:
            pattern = self._tilde.pattern
            self._norm_data = (self._tilde.data * inv_sqrt[pattern.rows]
                               * inv_sqrt[pattern.indices])

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def normalized(self) -> Union[np.ndarray, CSRMatrix]:
        """The current ``Â`` — dense array or CSR matrix per ``mode``."""
        if self.mode == "dense":
            return self._normalized
        pattern = self._tilde.pattern
        return CSRMatrix(pattern.indptr, pattern.indices, self._norm_data,
                         pattern.shape)

    def normalized_dense(self) -> np.ndarray:
        """``Â`` as a dense array regardless of mode (tests/inspection)."""
        if self.mode == "dense":
            return self._normalized.copy()
        return self.normalized().to_dense()

    def unnormalized_dense(self) -> np.ndarray:
        """``Ã = A + I`` as a dense array (the graph's source of truth)."""
        if self.mode == "dense":
            return self._tilde.copy()
        return self._tilde.to_dense()

    def degrees(self) -> np.ndarray:
        return self._degrees.copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Stored neighbours of ``node`` (excluding its self-loop)."""
        if self.mode == "dense":
            cols = np.flatnonzero(self._tilde[node])
        else:
            indptr = self._tilde.indptr
            cols = self._tilde.indices[indptr[node]:indptr[node + 1]]
        return cols[cols != node]

    # ------------------------------------------------------------------
    # the delta update
    # ------------------------------------------------------------------
    def apply_delta(self, edits: Iterable[EdgeEdit]) -> int:
        """Apply symmetric edge edits; returns the number of rows touched.

        Each ``(i, j, weight)`` sets both ``Ã_ij`` and ``Ã_ji`` to
        ``weight`` (0 removes the edge).  Degrees are recomputed for the
        edit endpoints and the normalized values for
        ``endpoints ∪ N(endpoints)`` — nothing else moves, which is the
        whole point.
        """
        ii, jj, ww = _normalize_edits(edits, self.num_nodes)
        if ii.size == 0:
            return 0
        endpoints = _sorted_unique(np.concatenate([ii, jj]))
        if self.mode == "dense":
            touched = self._apply_dense(ii, jj, ww, endpoints)
        else:
            touched = self._apply_csr(ii, jj, ww, endpoints)
        self.edits_applied += int(ii.size)
        self.rows_renormalized += int(touched.size)
        return int(touched.size)

    def _apply_dense(self, ii, jj, ww, endpoints) -> np.ndarray:
        # old neighbours matter too: a removed edge (i, u) leaves row u
        # structurally unchanged but d_i moved, so u must renormalize.
        old_neighbors = [self.neighbors(int(e)) for e in endpoints]
        self._tilde[ii, jj] = ww
        self._tilde[jj, ii] = ww
        self._degrees[endpoints] = self._row_degrees_dense(
            endpoints, self._tilde)
        new_neighbors = [self.neighbors(int(e)) for e in endpoints]
        touched = np.unique(np.concatenate(
            [endpoints, *old_neighbors, *new_neighbors]))
        inv_sqrt = self._degrees ** -0.5
        self._normalized[touched, :] = (self._tilde[touched, :]
                                        * inv_sqrt[touched, None]
                                        * inv_sqrt[None, :])
        self._normalized[:, touched] = (self._tilde[:, touched]
                                        * inv_sqrt[:, None]
                                        * inv_sqrt[None, touched])
        return touched

    def _apply_csr(self, ii, jj, ww, endpoints) -> np.ndarray:
        # Work on the flattened entry keyspace: row-major CSR order with
        # in-row ascending columns makes ``row * n + col`` strictly
        # increasing over the stored entries, so every edit locates its
        # entry with one batched searchsorted — no per-row Python work.
        n = self.num_nodes
        tilde = self._tilde
        indptr, indices = tilde.indptr, tilde.indices
        key_stored = self._keys
        key_e = np.concatenate([ii * n + jj, jj * n + ii])
        vals_e = np.concatenate([ww, ww])
        order = np.argsort(key_e)
        key_e, vals_e = key_e[order], vals_e[order]
        pos = np.searchsorted(key_stored, key_e)
        exists = pos < key_stored.size
        exists[exists] = key_stored[pos[exists]] == key_e[exists]
        updates = exists & (vals_e != 0.0)
        deletes = exists & (vals_e == 0.0)
        inserts = ~exists & (vals_e != 0.0)

        # old neighbours matter too: a removed edge (i, u) leaves row u
        # structurally unchanged but d_i moved, so u must renormalize
        idx_old, _ = _span_gather(indptr, endpoints)
        old_neighbors = indices[idx_old]

        # Copy-on-write: readers holding the previous normalized() view
        # keep a consistent pre-delta snapshot of tilde's values.
        data = tilde.data.copy()
        data[pos[updates]] = vals_e[updates]
        norm = self._norm_data
        if deletes.any() or inserts.any():
            if deletes.any():
                keep = np.ones(key_stored.size, dtype=bool)
                keep[pos[deletes]] = False
                key_stored = key_stored[keep]
                data = data[keep]
                norm = norm[keep]
            if inserts.any():
                # single merge-splice: one hole mask shared by all three
                # parallel arrays (np.insert would redo it per array)
                ins_keys = key_e[inserts]
                at = np.searchsorted(key_stored, ins_keys)
                total = key_stored.size + ins_keys.size
                dest = at + np.arange(ins_keys.size, dtype=np.int64)
                hole = np.ones(total, dtype=bool)
                hole[dest] = False
                merged = np.empty(total, dtype=np.int64)
                merged[dest] = ins_keys
                merged[hole] = key_stored
                key_stored = merged
                merged = np.empty(total)
                merged[dest] = vals_e[inserts]
                merged[hole] = data
                data = merged
                merged = np.zeros(total)          # renormalized below
                merged[hole] = norm
                norm = merged
            rows_new, cols_new = np.divmod(key_stored, n)
            counts = np.bincount(rows_new, minlength=n)
            indptr = np.concatenate([[0], np.cumsum(counts)])
            # valid by construction (sorted keys partition into rows),
            # so skip the O(nnz) re-validation of the checked path
            pattern = SparsePattern.trusted(indptr, cols_new, (n, n),
                                            rows=rows_new)
            self._keys = key_stored
        else:
            norm = norm.copy()
            pattern = tilde.pattern   # structure untouched: keep caches
        self._tilde = CSRMatrix.with_pattern(pattern, data)
        self._norm_data = norm
        indptr, indices = pattern.indptr, pattern.indices

        # endpoint rows include their self-loops, so the endpoints
        # themselves are already in the neighbour gather
        idx_new, _ = _span_gather(indptr, endpoints)
        touched = _sorted_unique(np.concatenate(
            [old_neighbors, indices[idx_new]]))
        # one gather over the new structure serves both the endpoint
        # degree update and the touched-row renormalization
        starts = indptr[touched]
        lengths = indptr[touched + 1] - starts
        ends = np.cumsum(lengths)
        seg_starts = ends - lengths
        idx = (np.arange(int(ends[-1]), dtype=np.int64)
               - np.repeat(seg_starts, lengths)
               + np.repeat(starts, lengths))
        sums = np.add.reduceat(np.abs(data[idx]), seg_starts)
        self._degrees[endpoints] = (
            sums[np.searchsorted(touched, endpoints)] + self.eps)
        inv_sqrt = self._degrees ** -0.5
        norm[idx] = (data[idx] * inv_sqrt[np.repeat(touched, lengths)]
                     * inv_sqrt[indices[idx]])
        return touched

    # ------------------------------------------------------------------
    # convenience edits
    # ------------------------------------------------------------------
    def isolate(self, nodes: Iterable[int]) -> int:
        """Remove every edge incident to ``nodes`` (delisting in place).

        The node keeps its slot and self-loop — the serving universe
        keeps a fixed width — but it no longer propagates to or from
        anyone.  Returns the number of rows renormalized.
        """
        edits: List[EdgeEdit] = []
        for node in {int(n) for n in nodes}:
            edits.extend((node, int(nb), 0.0)
                         for nb in self.neighbors(node))
        return self.apply_delta(edits) if edits else 0

    def full_recompute(self) -> Union[np.ndarray, CSRMatrix]:
        """Recompute degrees + all rows from scratch (the O(nnz) path).

        Uses the same per-row summation as the delta path, so the result
        is bitwise-equal to the incrementally maintained state — the
        equivalence oracle for tests and the correctness assert in
        ``benchmarks/bench_stream_tick.py``.
        """
        rows = np.arange(self.num_nodes)
        if self.mode == "dense":
            self._degrees = self._row_degrees_dense(rows, self._tilde)
        else:
            self._degrees = self._row_degrees_csr(rows, self._tilde)
        self._renormalize_all()
        return self.normalized()

    def stats(self) -> dict:
        return {"mode": self.mode, "num_nodes": self.num_nodes,
                "nnz": (int((self._tilde != 0).sum()) if self.mode == "dense"
                        else self._tilde.nnz),
                "edits_applied": self.edits_applied,
                "rows_renormalized": self.rows_renormalized}

    def __repr__(self) -> str:
        return (f"DynamicNormalizedAdjacency(mode={self.mode!r}, "
                f"n={self.num_nodes}, edits={self.edits_applied})")


__all__ = ["DynamicNormalizedAdjacency", "EdgeEdit", "DELTA_MODES"]
