"""Cache of normalized adjacencies shared across forward passes.

Static relation graphs do not change between training steps, yet the
strategies used to re-run ``add_self_loops`` + ``normalize_adjacency``
(and the dense→CSR conversion) on every forward.
:class:`NormalizedAdjacencyCache` stores those products once per distinct
graph, keyed on ``(strategy, relation-set, …)`` tuples built from
:meth:`repro.graph.RelationMatrix.cache_token`.

Entries fall in two classes:

- *static* entries (uniform strategy's normalized adjacency, the sparse
  edge structures of the learnable strategies) live until evicted by the
  LRU bound — they depend only on graph topology;
- *per-step* entries recorded by :class:`TimeSensitiveStrategy`, which
  emits a fresh adjacency stack per ``(features, time-window)``.  Each
  emission explicitly :meth:`invalidate`\\ s the previous stack under the
  same key, so a stale stack can never be observed downstream.

One process-global instance (:func:`adjacency_cache`) is shared by every
strategy so two models over the same relation matrix reuse one another's
work; ``stats()`` exposes hit/miss/invalidation counters for tests and
the profiler report.

The cache is **thread-safe**: ``repro.serve`` runs forward passes from
thread-pool workers that all read (and occasionally invalidate) the one
global instance, so every operation — including the read-modify-write
inside ``get_or_compute`` and the LRU reordering inside ``get`` — holds
an internal lock.  ``compute`` callables run *outside* the lock; two
threads missing the same key concurrently may both compute it (last
write wins), which is safe because entries are pure functions of the key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional

#: default LRU bound — a handful of markets × strategies × windows; each
#: entry is O(nnz), so the bound is about hygiene, not memory pressure.
DEFAULT_MAX_ENTRIES = 64

_MISSING = object()


class NormalizedAdjacencyCache:
    """Thread-safe LRU mapping from graph keys to normalized adjacencies."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.deltas = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` (counts as hit/miss, refreshes LRU order)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> Any:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return value

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss.

        ``compute`` runs without holding the cache lock so a slow
        normalization cannot stall concurrent readers of other keys.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
        return self.put(key, compute())

    def apply_delta(self, key: Hashable, edits: Any) -> int:
        """Apply edge edits to the dynamic adjacency cached under ``key``.

        The entry must expose ``apply_delta(edits)`` (a
        :class:`repro.graph.delta.DynamicNormalizedAdjacency`).  The whole
        update runs **under the cache lock** — streaming ingest and
        concurrent readers of the same key see either the pre- or
        post-delta graph, never a half-renormalized one.  Counts as a hit
        plus one ``deltas`` tick on success; a missing key counts as a
        miss and raises ``KeyError``; a non-dynamic entry counts as a hit
        (the lookup succeeded) and raises ``TypeError``.

        Returns the number of rows the update renormalized.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                raise KeyError(f"no dynamic adjacency cached under {key!r}")
            self._entries.move_to_end(key)
            self.hits += 1
            apply = getattr(value, "apply_delta", None)
            if apply is None:
                raise TypeError(
                    f"entry under {key!r} ({type(value).__name__}) does not "
                    "support delta updates")
            touched = apply(edits)
            self.deltas += 1
            return touched

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if present; returns whether an entry was removed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses,
                    "invalidations": self.invalidations,
                    "deltas": self.deltas}

    def __repr__(self) -> str:
        return (f"NormalizedAdjacencyCache(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")


_GLOBAL_CACHE: Optional[NormalizedAdjacencyCache] = None
_GLOBAL_CACHE_LOCK = threading.Lock()


def adjacency_cache() -> NormalizedAdjacencyCache:
    """The process-global cache shared by every relation strategy."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        with _GLOBAL_CACHE_LOCK:
            if _GLOBAL_CACHE is None:
                _GLOBAL_CACHE = NormalizedAdjacencyCache()
    return _GLOBAL_CACHE


def reset_adjacency_cache() -> NormalizedAdjacencyCache:
    """Replace the global cache with a fresh one (test isolation)."""
    global _GLOBAL_CACHE
    with _GLOBAL_CACHE_LOCK:
        _GLOBAL_CACHE = NormalizedAdjacencyCache()
    return _GLOBAL_CACHE
