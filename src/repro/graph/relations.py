"""Multi-relational stock-relation matrices (paper §III-A).

The paper encodes the pairwise relations between two stocks as a multi-hot
binary vector over ``K`` relation types, giving a tensor
``A ∈ {0,1}^{N×N×K}``.  :class:`RelationMatrix` wraps that tensor together
with the relation-type names and provides the statistics reported in
Table III (relation ratio, type counts) plus slicing by relation source
(wiki vs industry) used in the Table VI ablation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class RelationMatrix:
    """A multi-hot relation tensor with named relation types.

    Attributes
    ----------
    tensor:
        Array of shape ``(N, N, K)``; ``tensor[i, j, k] == 1`` when stocks
        ``i`` and ``j`` are linked by relation type ``k``.  Relations are
        undirected in the paper, so the tensor is kept symmetric in its
        first two axes; the diagonal carries no self-relations.
    type_names:
        Length-``K`` list naming each relation type (e.g.
        ``"industry:biotechnology"`` or ``"wiki:supplier_of"``).
    """

    tensor: np.ndarray
    type_names: List[str] = field(default_factory=list)

    def __post_init__(self):
        self._cache_token: Optional[Tuple[int, int, int, int]] = None
        self.tensor = np.asarray(self.tensor, dtype=np.float64)
        if self.tensor.ndim != 3:
            raise ValueError(f"relation tensor must be (N, N, K), got shape "
                             f"{self.tensor.shape}")
        n, m, k = self.tensor.shape
        if n != m:
            raise ValueError(f"relation tensor must be square in its first "
                             f"two axes, got {self.tensor.shape}")
        if not self.type_names:
            self.type_names = [f"relation_{i}" for i in range(k)]
        if len(self.type_names) != k:
            raise ValueError(f"{len(self.type_names)} names for {k} types")
        if not np.allclose(self.tensor, self.tensor.transpose(1, 0, 2)):
            raise ValueError("relation tensor must be symmetric (undirected)")
        diag = self.tensor[np.arange(n), np.arange(n), :]
        if np.any(diag != 0):
            raise ValueError("self-relations on the diagonal are not allowed")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_stocks: int,
              type_names: Sequence[str]) -> "RelationMatrix":
        return cls(np.zeros((num_stocks, num_stocks, len(type_names))),
                   list(type_names))

    @classmethod
    def from_edges(cls, num_stocks: int, type_names: Sequence[str],
                   edges: Iterable[Tuple[int, int, int]]) -> "RelationMatrix":
        """Build from ``(i, j, type_index)`` triples (symmetrized)."""
        tensor = np.zeros((num_stocks, num_stocks, len(type_names)))
        for i, j, k in edges:
            if i == j:
                raise ValueError(f"self-relation for stock {i}")
            tensor[i, j, k] = 1.0
            tensor[j, i, k] = 1.0
        return cls(tensor, list(type_names))

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_stocks(self) -> int:
        return self.tensor.shape[0]

    @property
    def num_types(self) -> int:
        return self.tensor.shape[2]

    def pair_vector(self, i: int, j: int) -> np.ndarray:
        """The multi-hot relation vector ``a_ij ∈ {0,1}^K``."""
        return self.tensor[i, j].copy()

    def binary_adjacency(self) -> np.ndarray:
        """Paper Eq. (3): ``A_ij = 1`` iff ``sum(a_ij) > 0`` (no diagonal)."""
        return (self.tensor.sum(axis=2) > 0).astype(np.float64)

    def cache_token(self) -> Tuple[int, int, int, int]:
        """Content fingerprint identifying this relation set in caches.

        A shape + CRC32 digest of the tensor bytes rather than ``id()``:
        object identity can be recycled after garbage collection, which
        would silently serve a stale normalized adjacency.  Computed once
        (the tensor is treated as immutable after construction, as the
        rest of the stack already assumes).
        """
        if self._cache_token is None:
            digest = zlib.crc32(np.ascontiguousarray(self.tensor).tobytes())
            self._cache_token = (self.num_stocks, self.num_types,
                                 int(self.tensor.sum()), digest)
        return self._cache_token

    def relation_ratio(self) -> float:
        """Fraction of (unordered) stock pairs linked by ≥ 1 relation.

        This is the "relation ratio" statistic of Table III.
        """
        n = self.num_stocks
        if n < 2:
            return 0.0
        adjacency = self.binary_adjacency()
        linked_pairs = np.triu(adjacency, k=1).sum()
        total_pairs = n * (n - 1) / 2
        return float(linked_pairs / total_pairs)

    def edge_count(self) -> int:
        """Number of linked unordered pairs."""
        return int(np.triu(self.binary_adjacency(), k=1).sum())

    def degree(self) -> np.ndarray:
        """Per-stock neighbor count under the binary adjacency."""
        return self.binary_adjacency().sum(axis=1)

    # ------------------------------------------------------------------
    # combination and slicing
    # ------------------------------------------------------------------
    def select_types(self, indices: Sequence[int]) -> "RelationMatrix":
        """Restrict to a subset of relation types (e.g. industry-only)."""
        indices = list(indices)
        return RelationMatrix(self.tensor[:, :, indices].copy(),
                              [self.type_names[i] for i in indices])

    def select_prefix(self, prefix: str) -> "RelationMatrix":
        """Restrict to types whose name starts with ``prefix`` (e.g. "wiki:")."""
        indices = [i for i, name in enumerate(self.type_names)
                   if name.startswith(prefix)]
        if not indices:
            raise KeyError(f"no relation types with prefix {prefix!r} among "
                           f"{self.type_names[:5]}...")
        return self.select_types(indices)

    def merge(self, other: "RelationMatrix") -> "RelationMatrix":
        """Concatenate relation types of two matrices over the same stocks."""
        if other.num_stocks != self.num_stocks:
            raise ValueError("cannot merge relation matrices over different "
                             f"universes ({self.num_stocks} vs "
                             f"{other.num_stocks} stocks)")
        overlap = set(self.type_names) & set(other.type_names)
        if overlap:
            raise ValueError(f"duplicate relation types: {sorted(overlap)}")
        tensor = np.concatenate([self.tensor, other.tensor], axis=2)
        return RelationMatrix(tensor, self.type_names + other.type_names)

    def subgraph(self, stock_indices: Sequence[int]) -> "RelationMatrix":
        """Restrict to a subset of stocks (used by the Figure 8 case study)."""
        idx = np.asarray(list(stock_indices))
        return RelationMatrix(self.tensor[np.ix_(idx, idx)].copy(),
                              list(self.type_names))

    def type_usage(self) -> Dict[str, int]:
        """Number of linked pairs carrying each relation type."""
        counts = np.triu(self.tensor.transpose(2, 0, 1), k=1).sum(axis=(1, 2))
        return {name: int(c) for name, c in zip(self.type_names, counts)}

    def __repr__(self) -> str:
        return (f"RelationMatrix(stocks={self.num_stocks}, "
                f"types={self.num_types}, "
                f"ratio={self.relation_ratio():.4f})")
