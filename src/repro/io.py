"""Model checkpointing: save/load parameter state as ``.npz`` archives.

.. deprecated::
    This module predates :mod:`repro.ckpt` and survives as a thin shim
    over it, matching the ``Trainer.train(progress=)`` precedent: the
    functions keep working (now writing the atomic, checksummed format
    version 2) but new code should call :func:`repro.ckpt.save` /
    :func:`repro.ckpt.load` — or, for full training state, use
    :class:`repro.ckpt.CheckpointManager` and
    ``Trainer.fit(resume_from=...)``.

:func:`load_checkpoint` reads both format versions: v2 archives written
by this build and legacy v1 archives written before the rebase.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from .ckpt.checkpoint import (FORMAT_VERSION, CheckpointError,
                              TrainingCheckpoint, read_archive)
from .ckpt.checkpoint import save as _save_training_checkpoint
from .nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "FORMAT_VERSION"]


def save_checkpoint(model: Module, path: Union[str, Path],
                    metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write a model's ``state_dict`` (plus metadata) to ``path``.

    .. deprecated:: use :func:`repro.ckpt.save` with a
        :class:`~repro.ckpt.TrainingCheckpoint` instead; this shim wraps
        it for parameters-only snapshots.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.
    path:
        Target filename; ``.npz`` is appended when missing.
    metadata:
        JSON-serializable extras (market name, config, metrics, ...).
    """
    warnings.warn("repro.io.save_checkpoint is deprecated; use "
                  "repro.ckpt.save (or CheckpointManager for training "
                  "state) instead", DeprecationWarning, stacklevel=2)
    checkpoint = TrainingCheckpoint(
        model_state=model.state_dict(),
        model_class=type(model).__name__,
        metadata={"num_parameters": int(model.num_parameters()),
                  "user": metadata or {}})
    return _save_training_checkpoint(checkpoint, path)


def load_checkpoint(model: Module, path: Union[str, Path],
                    strict: bool = True) -> Dict[str, object]:
    """Restore parameters saved by :func:`save_checkpoint` into ``model``.

    .. deprecated:: use :func:`repro.ckpt.load` instead; this shim keeps
        the classic signature (mutates ``model``, returns the metadata
        dict) on top of the v2 reader and still accepts v1 archives.

    Raises if the stored model class does not match (pass
    ``strict=False`` to skip that check and tolerate missing/extra
    parameters).
    """
    warnings.warn("repro.io.load_checkpoint is deprecated; use "
                  "repro.ckpt.load instead", DeprecationWarning,
                  stacklevel=2)
    path = Path(path)
    try:
        arrays, meta = read_archive(path)
    except CheckpointError as exc:
        # The historical contract raised ValueError on a bad archive;
        # keep that for callers pinning the old behavior.
        raise ValueError(str(exc)) from exc

    if meta.get("format_version") == 1:
        state = dict(arrays)
        model_class = meta.get("model_class")
        user_meta = dict(meta)
    else:
        state = {name[len("model/"):]: array
                 for name, array in arrays.items()
                 if name.startswith("model/")}
        model_class = meta.get("model_class")
        shim_meta = meta.get("user", {})
        user_meta = {
            "format_version": meta.get("format_version", FORMAT_VERSION),
            "model_class": model_class,
            "num_parameters": shim_meta.get(
                "num_parameters",
                int(sum(array.size for array in state.values()))),
            "user": shim_meta.get("user", shim_meta),
        }
    if strict and model_class and model_class != type(model).__name__:
        raise ValueError(f"checkpoint holds a {model_class}, "
                         f"model is a {type(model).__name__}")
    model.load_state_dict(state, strict=strict)
    return user_meta
