"""Model checkpointing: save/load parameter state as ``.npz`` archives.

Keeps the reproduction usable as a library: train once, persist, reload
for later scoring.  Only parameter arrays are stored (the architecture is
reconstructed from code), plus a small metadata record validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .nn.module import Module

_META_KEY = "__checkpoint_meta__"
FORMAT_VERSION = 1


def save_checkpoint(model: Module, path: Union[str, Path],
                    metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write a model's ``state_dict`` (plus metadata) to ``path``.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.
    path:
        Target filename; ``.npz`` is appended when missing.
    metadata:
        JSON-serializable extras (market name, config, metrics, ...).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = model.state_dict()
    meta = {
        "format_version": FORMAT_VERSION,
        "model_class": type(model).__name__,
        "num_parameters": int(model.num_parameters()),
        "user": metadata or {},
    }
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_checkpoint(model: Module, path: Union[str, Path],
                    strict: bool = True) -> Dict[str, object]:
    """Restore parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the checkpoint's metadata dict.  Raises if the stored model
    class does not match (pass ``strict=False`` to skip that check and
    tolerate missing/extra parameters).
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version "
                         f"{meta.get('format_version')}")
    if strict and meta["model_class"] != type(model).__name__:
        raise ValueError(f"checkpoint holds a {meta['model_class']}, "
                         f"model is a {type(model).__name__}")
    model.load_state_dict(state, strict=strict)
    return meta
