"""Gradient-descent optimizers.

The paper trains every model with Adam (lr = 0.001, §V-B-4); SGD and RMSprop
are provided for the baselines and the test-suite's convergence checks.
All optimizers operate on the ``grad`` arrays produced by
``Tensor.backward`` and support decoupled or coupled weight decay.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..tensor import Tensor


class Optimizer:
    """Base class holding the parameter list and per-parameter state.

    Optimizers serialize through the same ``state_dict()`` /
    ``load_state_dict()`` contract as :class:`~repro.nn.Module`, so a
    checkpoint can persist Adam's moment buffers and step count and resume
    a run bitwise-identically (see :mod:`repro.ckpt`).
    """

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _state_for(self, index: int) -> Dict[str, np.ndarray]:
        return self.state.setdefault(index, {})

    # ------------------------------------------------------------------
    # serialization (mirrors the Module contract)
    # ------------------------------------------------------------------
    #: scalar attributes serialized alongside the buffers; subclasses
    #: extend this with their own hyperparameters.
    _hyperparameter_names: tuple = ("lr",)

    def state_dict(self) -> Dict[str, object]:
        """Full optimizer state: hyperparameters, step count, and a copy
        of every per-parameter buffer, keyed by parameter index."""
        return {
            "type": type(self).__name__,
            "step_count": self._step_count,
            "hyperparameters": {name: getattr(self, name)
                                for name in self._hyperparameter_names},
            "state": {index: {slot: array.copy()
                              for slot, array in slots.items()}
                      for index, slots in self.state.items()},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`.

        The optimizer must hold the same parameter list (same count and
        shapes) it was created with; buffer shapes are validated against
        the current parameters.
        """
        if state.get("type") != type(self).__name__:
            raise ValueError(f"optimizer state is for {state.get('type')!r}, "
                             f"cannot load into {type(self).__name__}")
        for name, value in state.get("hyperparameters", {}).items():
            if name not in self._hyperparameter_names:
                raise ValueError(f"unknown hyperparameter {name!r} for "
                                 f"{type(self).__name__}")
            setattr(self, name, value)
        restored: Dict[int, Dict[str, np.ndarray]] = {}
        for index, slots in state.get("state", {}).items():
            index = int(index)
            if not 0 <= index < len(self.params):
                raise ValueError(f"optimizer state refers to parameter "
                                 f"{index}, but only {len(self.params)} "
                                 "parameters are registered")
            expected = self.params[index].data.shape
            buffers: Dict[str, np.ndarray] = {}
            for slot, array in slots.items():
                array = np.asarray(array)
                if array.shape != expected and array.shape != ():
                    raise ValueError(
                        f"optimizer buffer {slot!r} for parameter {index} "
                        f"has shape {array.shape}, parameter is {expected}")
                buffers[slot] = array.copy()
            restored[index] = buffers
        self.state = restored
        self._step_count = int(state.get("step_count", 0))


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, nesterov: bool = False,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay

    _hyperparameter_names = ("lr", "momentum", "nesterov", "weight_decay")

    def step(self) -> None:
        self._step_count += 1
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                state = self._state_for(i)
                buf = state.get("momentum")
                if buf is None:
                    buf = grad.copy()
                else:
                    buf = self.momentum * buf + grad
                state["momentum"] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    ``weight_decay`` here is the classic L2-coupled form (added to the
    gradient), matching the paper's λ‖β‖² regularization when used together
    with an explicit loss term of zero — the trainer instead keeps λ in the
    loss (Eq. 9) and leaves this at 0 by default.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay

    _hyperparameter_names = ("lr", "beta1", "beta2", "eps", "weight_decay")

    def _decay(self, param: Tensor, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = self._decay(param, param.grad)
            state = self._state_for(i)
            m = state.get("m")
            v = state.get("v")
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            state["m"], state["v"] = m, v
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _decay(self, param: Tensor, grad: np.ndarray) -> np.ndarray:
        return grad  # decay applied directly to weights in step()

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        super().step()


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton), used by the RL baselines' critics."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2,
                 alpha: float = 0.99, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay

    _hyperparameter_names = ("lr", "alpha", "eps", "weight_decay")

    def step(self) -> None:
        self._step_count += 1
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            state = self._state_for(i)
            avg = state.get("square_avg")
            if avg is None:
                avg = np.zeros_like(param.data)
            avg = self.alpha * avg + (1 - self.alpha) * grad * grad
            state["square_avg"] = avg
            param.data -= self.lr * grad / (np.sqrt(avg) + self.eps)


def clip_grad_norm_(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


def clip_grad_value_(params: Iterable[Tensor], clip_value: float) -> None:
    """Clamp every gradient element into ``[-clip_value, clip_value]``."""
    for p in params:
        if p.grad is not None:
            np.clip(p.grad, -clip_value, clip_value, out=p.grad)
