"""Learning-rate schedulers that wrap an :class:`~repro.optim.Optimizer`.

Schedulers carry mutable position state (``last_epoch``, plateau
counters) and therefore follow the same ``state_dict()`` /
``load_state_dict()`` contract as modules and optimizers, so a resumed
run continues the schedule where it stopped instead of restarting it.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .optimizer import Optimizer


class LRScheduler:
    """Base scheduler; subclasses define the rate at a given epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr()

    # mutable attributes captured by state_dict; subclasses with extra
    # position state extend this tuple.
    _state_attrs: tuple = ("base_lr", "last_epoch")

    def state_dict(self) -> Dict[str, object]:
        """The scheduler's mutable position state (not the optimizer's)."""
        state = {name: getattr(self, name) for name in self._state_attrs}
        state["type"] = type(self).__name__
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict` and re-apply the
        scheduled learning rate to the wrapped optimizer."""
        if state.get("type") != type(self).__name__:
            raise ValueError(f"scheduler state is for {state.get('type')!r}, "
                             f"cannot load into {type(self).__name__}")
        for name in self._state_attrs:
            if name in state:
                setattr(self, name, state[name])
        if self.last_epoch > 0:
            self.optimizer.lr = self.get_lr()


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """LR decays by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** self.last_epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return (self.eta_min + (self.base_lr - self.eta_min)
                * (1 + math.cos(math.pi * progress)) / 2)


class ReduceLROnPlateau:
    """Halve (by ``factor``) the LR when a monitored metric stops improving."""

    def __init__(self, optimizer: Optimizer, factor: float = 0.5,
                 patience: int = 5, min_lr: float = 1e-6,
                 mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.mode = mode
        self.best: Optional[float] = None
        self.bad_epochs = 0

    def state_dict(self) -> Dict[str, object]:
        """Plateau-tracking state plus the optimizer LR it controls."""
        return {"type": type(self).__name__, "best": self.best,
                "bad_epochs": self.bad_epochs, "lr": self.optimizer.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore plateau counters and the (possibly reduced) LR."""
        if state.get("type") != type(self).__name__:
            raise ValueError(f"scheduler state is for {state.get('type')!r}, "
                             f"cannot load into {type(self).__name__}")
        self.best = state.get("best")
        self.bad_epochs = int(state.get("bad_epochs", 0))
        if "lr" in state:
            self.optimizer.lr = float(state["lr"])

    def step(self, metric: float) -> None:
        improved = (self.best is None
                    or (self.mode == "min" and metric < self.best)
                    or (self.mode == "max" and metric > self.best))
        if improved:
            self.best = metric
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor,
                                        self.min_lr)
                self.bad_epochs = 0
