"""Optimizers and learning-rate schedulers for the autograd engine."""

from .optimizer import (Adam, AdamW, Optimizer, RMSprop, SGD,
                        clip_grad_norm_, clip_grad_value_)
from .scheduler import (CosineAnnealingLR, ExponentialLR, LRScheduler,
                        ReduceLROnPlateau, StepLR)

__all__ = [
    "Optimizer", "SGD", "Adam", "AdamW", "RMSprop",
    "clip_grad_norm_", "clip_grad_value_",
    "LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR",
    "ReduceLROnPlateau",
]
