"""Sparse-compute subsystem: CSR storage, kernels, dispatch policy.

The relation graphs of the paper's markets are sparse (<5 % density at
NASDAQ scale), so the graph stack dispatches its propagation onto CSR
kernels when the density makes that a win:

- :class:`CSRMatrix` — plain-data CSR storage with dense/COO converters;
- :class:`~repro.tensor.sparse.SparseTensor` /
  :func:`~repro.tensor.sparse.spmm` — the autograd-integrated layer
  (defined in :mod:`repro.tensor.sparse` so the tensor engine stays
  dependency-free; re-exported here as the public face);
- :func:`~repro.tensor.sparse.resolve_graph_mode` — the ``auto`` |
  ``dense`` | ``sparse`` dispatch rule shared by every graph module (see
  ``docs/performance.md``).
"""

from ..tensor.sparse import (DEFAULT_DENSITY_THRESHOLD, GRAPH_MODES,
                             HAVE_SCIPY, SparsePattern, SparseTensor,
                             resolve_graph_mode, sddmm, sparse_gather,
                             sparse_segment_sum, spmm)
from .csr import CSRMatrix
from .edit import (csr_delete_entries, csr_drop_rowcol, csr_get_entries,
                   csr_set_entries, row_edit_chunks, splice_rows)

__all__ = [
    "CSRMatrix", "SparsePattern", "SparseTensor",
    "spmm", "sddmm", "sparse_gather", "sparse_segment_sum",
    "resolve_graph_mode", "DEFAULT_DENSITY_THRESHOLD", "GRAPH_MODES",
    "HAVE_SCIPY",
    "row_edit_chunks", "splice_rows", "csr_set_entries",
    "csr_delete_entries", "csr_get_entries", "csr_drop_rowcol",
]
