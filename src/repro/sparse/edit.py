"""Row-touch CSR edit operations for time-evolving graphs.

A streaming market mutates a handful of edges per day; rebuilding the
whole CSR structure (and renormalizing every row) per tick would make
the update cost O(nnz) regardless of how small the change is.  The ops
here rebuild **only the touched rows**: untouched row spans of the
``indices``/``data`` arrays are copied in bulk, so the Python-level work
is proportional to the number of edited rows, not the matrix size.

Three layers, lowest first:

- :func:`row_edit_chunks` — merge point edits (set / delete) into
  per-row replacement chunks, set semantics (``value == 0`` deletes,
  duplicates last-wins);
- :func:`splice_rows` — replace whole rows of a :class:`CSRMatrix` with
  new ``(columns, values)`` chunks, copying everything else by span;
- :func:`csr_set_entries` / :func:`csr_delete_entries` — the public
  point-edit ops built from the two above.

:func:`csr_drop_rowcol` is the structural remap used when stocks delist
and the universe is compacted: it removes rows *and* columns and
reindexes the survivors.

All ops return **new** matrices — :class:`~repro.tensor.sparse
.SparsePattern` is immutable (cached transposes/row arrays hang off it),
so in-place structural mutation is not representable.  The delta layer
(:mod:`repro.graph.delta`) owns the "current graph" identity instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from .csr import CSRMatrix

#: per-row replacement chunk: ``row -> (sorted column ids, values)``
RowChunks = Dict[int, Tuple[np.ndarray, np.ndarray]]


def _as_edit_arrays(rows, cols, values=None):
    rows = np.asarray(rows, dtype=np.int64).reshape(-1)
    cols = np.asarray(cols, dtype=np.int64).reshape(-1)
    if rows.shape != cols.shape:
        raise ValueError(f"rows and cols must be equal-length 1-D, got "
                         f"{rows.shape} vs {cols.shape}")
    if values is None:
        values = np.zeros(rows.shape, dtype=np.float64)
    else:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.shape != rows.shape:
            raise ValueError(f"values shape {values.shape} does not match "
                             f"{rows.size} edits")
    return rows, cols, values


def row_edit_chunks(matrix: CSRMatrix, rows, cols, values) -> RowChunks:
    """Merge point edits into whole-row replacement chunks.

    Set semantics: an edit ``(r, c, v)`` makes entry ``(r, c)`` exactly
    ``v`` (inserting or overwriting); ``v == 0.0`` removes the entry
    (removing an absent entry is a no-op).  Duplicate coordinates in the
    edit list resolve last-wins, so one batch can delete and re-add the
    same entry.
    """
    rows, cols, values = _as_edit_arrays(rows, cols, values)
    n_rows, n_cols = matrix.shape
    if rows.size and (rows.min() < 0 or rows.max() >= n_rows
                      or cols.min() < 0 or cols.max() >= n_cols):
        raise ValueError(f"edit coordinates out of range for shape "
                         f"{matrix.shape}")
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    chunks: RowChunks = {}
    for r in np.unique(rows):
        start, end = int(indptr[r]), int(indptr[r + 1])
        merged = dict(zip(indices[start:end].tolist(),
                          data[start:end].tolist()))
        sel = rows == r
        for c, v in zip(cols[sel].tolist(), values[sel].tolist()):
            if v == 0.0:
                merged.pop(c, None)
            else:
                merged[c] = v
        ordered = sorted(merged)
        chunks[int(r)] = (np.array(ordered, dtype=np.int64),
                          np.array([merged[c] for c in ordered],
                                   dtype=np.float64))
    return chunks


def splice_rows(matrix: CSRMatrix, chunks: RowChunks) -> CSRMatrix:
    """Replace whole rows of ``matrix`` with the given chunks.

    Rows not named in ``chunks`` keep their entries; their spans of the
    ``indices``/``data`` arrays are copied in bulk (one slice per gap
    between edited rows), so the cost is O(#edited rows) Python work
    plus O(nnz) memcpy — no per-entry Python loop over the whole matrix.
    """
    if not chunks:
        return matrix
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    new_lengths = np.diff(indptr).copy()
    seg_idx, seg_val = [], []
    prev = 0
    for r in sorted(chunks):
        if not 0 <= r < matrix.shape[0]:
            raise ValueError(f"row {r} out of range for {matrix.shape}")
        new_cols, new_vals = chunks[r]
        seg_idx.append(indices[indptr[prev]:indptr[r]])
        seg_val.append(data[indptr[prev]:indptr[r]])
        seg_idx.append(np.asarray(new_cols, dtype=np.int64))
        seg_val.append(np.asarray(new_vals, dtype=np.float64))
        new_lengths[r] = len(new_cols)
        prev = r + 1
    seg_idx.append(indices[indptr[prev]:])
    seg_val.append(data[indptr[prev]:])
    new_indptr = np.concatenate([[0], np.cumsum(new_lengths)])
    return CSRMatrix(new_indptr, np.concatenate(seg_idx),
                     np.concatenate(seg_val), matrix.shape)


def csr_set_entries(matrix: CSRMatrix, rows, cols, values
                    ) -> Tuple[CSRMatrix, np.ndarray]:
    """Set entries to exact values (0 deletes); returns (matrix, touched).

    ``touched`` is the sorted array of row indices whose stored entries
    changed — the rows a degree-based renormalization must revisit.
    """
    rows, cols, values = _as_edit_arrays(rows, cols, values)
    if rows.size == 0:
        return matrix, np.empty(0, dtype=np.int64)
    chunks = row_edit_chunks(matrix, rows, cols, values)
    return splice_rows(matrix, chunks), np.unique(rows)


def csr_delete_entries(matrix: CSRMatrix, rows, cols
                       ) -> Tuple[CSRMatrix, np.ndarray]:
    """Remove entries (absent entries are a no-op); returns (matrix, touched)."""
    rows, cols, _ = _as_edit_arrays(rows, cols)
    return csr_set_entries(matrix, rows, cols, np.zeros(rows.size))


def csr_get_entries(matrix: CSRMatrix, rows, cols) -> np.ndarray:
    """Stored values at the given coordinates (0.0 where absent)."""
    rows, cols, _ = _as_edit_arrays(rows, cols)
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    out = np.zeros(rows.size, dtype=np.float64)
    for k, (r, c) in enumerate(zip(rows.tolist(), cols.tolist())):
        start, end = int(indptr[r]), int(indptr[r + 1])
        pos = start + int(np.searchsorted(indices[start:end], c))
        if pos < end and indices[pos] == c:
            out[k] = data[pos]
    return out


def csr_drop_rowcol(matrix: CSRMatrix, drop: Iterable[int]) -> CSRMatrix:
    """Remove rows *and* columns ``drop`` and compact the index space.

    The structural half of a delisting with universe remapping: surviving
    stocks keep their relative order but shift down into the freed slots.
    Requires a square matrix (adjacency semantics).
    """
    n_rows, n_cols = matrix.shape
    if n_rows != n_cols:
        raise ValueError(f"csr_drop_rowcol needs a square matrix, got "
                         f"{matrix.shape}")
    drop = np.unique(np.asarray(list(drop), dtype=np.int64))
    if drop.size and (drop.min() < 0 or drop.max() >= n_rows):
        raise ValueError(f"drop indices out of range for {matrix.shape}")
    keep = np.ones(n_rows, dtype=bool)
    keep[drop] = False
    remap = np.cumsum(keep) - 1                 # old index -> new index
    rows_old = matrix.pattern.rows
    mask = keep[rows_old] & keep[matrix.indices]
    size = int(n_rows - drop.size)
    return CSRMatrix.from_coo(remap[rows_old[mask]],
                              remap[matrix.indices[mask]],
                              matrix.data[mask], (size, size))


__all__ = ["row_edit_chunks", "splice_rows", "csr_set_entries",
           "csr_delete_entries", "csr_get_entries", "csr_drop_rowcol"]
