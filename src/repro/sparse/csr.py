"""Plain-data CSR matrix type: construction, conversion, kernel access.

:class:`CSRMatrix` is the autograd-free face of the sparse subsystem —
row-pointer / column-index / value storage with converters from dense and
COO layouts.  It shares the kernel backend of :mod:`repro.tensor.sparse`
(SciPy's C CSR matmul when available, a NumPy ``reduceat`` fallback
otherwise), and bridges into the autograd layer via
:meth:`CSRMatrix.to_sparse_tensor`.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..tensor.sparse import SparsePattern, SparseTensor, _csr_matmul


class CSRMatrix:
    """A 2-D sparse matrix in compressed-sparse-row form.

    Attributes
    ----------
    indptr:
        ``(n_rows + 1,)`` row pointers into ``indices``/``data``.
    indices:
        ``(nnz,)`` column index of each stored value, row-major with
        ascending columns inside each row.
    data:
        ``(nnz,)`` stored values, float64.
    shape:
        ``(n_rows, n_cols)``.
    """

    __slots__ = ("pattern", "data")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, shape: Tuple[int, int]):
        self.pattern = SparsePattern(indptr, indices, shape)
        data = np.asarray(data, dtype=np.float64)
        if data.shape != (self.pattern.nnz,):
            raise ValueError(f"data shape {data.shape} does not match "
                             f"{self.pattern.nnz} stored indices")
        self.data = data

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray,
                   threshold: float = 0.0) -> "CSRMatrix":
        """Sparsify a dense 2-D array, dropping ``|x| <= threshold``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {dense.shape}")
        mask = np.abs(dense) > threshold
        pattern = SparsePattern.from_mask(mask)
        return cls(pattern.indptr, pattern.indices,
                   dense[pattern.rows, pattern.indices], dense.shape)

    @classmethod
    def with_pattern(cls, pattern: SparsePattern,
                     data: np.ndarray) -> "CSRMatrix":
        """Pair an already-validated pattern with a float64 value array.

        The fast path for structure-preserving value updates (the
        streaming delta), which would otherwise re-validate the same
        pattern every tick; the pattern's cached row expansion and
        transpose carry over.
        """
        if data.shape != (pattern.nnz,):
            raise ValueError(f"data shape {data.shape} does not match "
                             f"{pattern.nnz} stored indices")
        matrix = cls.__new__(cls)
        matrix.pattern = pattern
        matrix.data = data
        return matrix

    @classmethod
    def from_coo(cls, rows: np.ndarray, cols: np.ndarray, data: np.ndarray,
                 shape: Tuple[int, int]) -> "CSRMatrix":
        """Build from coordinate triples; duplicate coordinates are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
            raise ValueError("rows, cols and data must be equal-length 1-D")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows
                          or cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError(f"coordinates out of range for shape {shape}")
        order = np.lexsort((cols, rows))
        rows, cols, data = rows[order], cols[order], data[order]
        if rows.size:
            first = np.concatenate([[True], (np.diff(rows) != 0)
                                    | (np.diff(cols) != 0)])
            starts = np.flatnonzero(first)
            rows, cols = rows[starts], cols[starts]
            data = np.add.reduceat(data, starts)
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(indptr, cols, data, (n_rows, n_cols))

    # -- views ----------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        return self.pattern.indptr

    @property
    def indices(self) -> np.ndarray:
        return self.pattern.indices

    @property
    def shape(self) -> Tuple[int, int]:
        return self.pattern.shape

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    @property
    def density(self) -> float:
        return self.pattern.density

    # -- conversion -----------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        dense[self.pattern.rows, self.pattern.indices] = self.data
        return dense

    def to_sparse_tensor(self) -> SparseTensor:
        """Bridge into the autograd layer (shares the pattern arrays)."""
        return SparseTensor.from_csr(self)

    def transpose(self) -> "CSRMatrix":
        t_indptr, t_indices, perm = self.pattern.transpose_data()
        return CSRMatrix(t_indptr, t_indices, self.data[perm],
                         (self.shape[1], self.shape[0]))

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    # -- arithmetic -----------------------------------------------------
    def matmul(self, dense: np.ndarray) -> np.ndarray:
        """``self @ dense`` for a dense ``(n_cols, C)`` (or batched) array."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 1:
            return _csr_matmul(self.pattern, self.data,
                               dense[:, None])[..., 0]
        return _csr_matmul(self.pattern, self.data, dense)

    def __matmul__(self, dense: Union[np.ndarray, list]) -> np.ndarray:
        return self.matmul(np.asarray(dense))

    def __repr__(self) -> str:
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.4f})")
