"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (``pip install -e .``) cannot build a wheel.  This
shim lets ``python setup.py develop`` provide the same editable install; all
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
